"""Tests for scheduling data structures: Assignment, Schedule, timelines, state.

Includes the fast-kernel guarantees: a hypothesis property test that the
bisect-based :class:`ResourceTimeline` behaves exactly like the seed (naive
O(n²)) timeline on random interval sequences, and equivalence tests that the
rewritten HEFT/AHEFT produce bit-identical schedules to the frozen seed
kernel on seeded random and application DAGs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import run_adaptive
from repro.generators.blast import generate_blast_case
from repro.generators.wien2k import generate_wien2k_case
from repro.resources.dynamics import ResourceChangeModel
from repro.scheduling._seed_reference import (
    SeedAHEFTScheduler,
    SeedResourceTimeline,
    seed_aheft_reschedule,
    seed_heft_schedule,
)
from repro.scheduling.aheft import AHEFTScheduler, aheft_reschedule
from repro.scheduling.base import (
    Assignment,
    ExecutionState,
    JobStatus,
    ResourceTimeline,
    Schedule,
)
from repro.scheduling.heft import heft_schedule


class TestAssignment:
    def test_duration(self):
        a = Assignment("j", "r", 2.0, 5.0)
        assert a.duration == 3.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            Assignment("j", "r", 5.0, 2.0)

    def test_shifted(self):
        a = Assignment("j", "r", 2.0, 5.0).shifted(10.0)
        assert (a.start, a.finish) == (12.0, 15.0)


class TestResourceTimeline:
    def test_append_without_insertion(self):
        tl = ResourceTimeline("r1")
        tl.occupy(0.0, 10.0, "a")
        assert tl.earliest_start(0.0, 5.0, insertion=False) == 10.0

    def test_insertion_finds_gap(self):
        tl = ResourceTimeline("r1")
        tl.occupy(0.0, 5.0, "a")
        tl.occupy(20.0, 30.0, "b")
        assert tl.earliest_start(0.0, 10.0, insertion=True) == 5.0

    def test_insertion_skips_too_small_gap(self):
        tl = ResourceTimeline("r1")
        tl.occupy(0.0, 5.0, "a")
        tl.occupy(8.0, 30.0, "b")
        assert tl.earliest_start(0.0, 10.0, insertion=True) == 30.0

    def test_ready_time_and_available_from(self):
        tl = ResourceTimeline("r1", available_from=7.0)
        assert tl.ready_time() == 7.0
        assert tl.earliest_start(0.0, 1.0) == 7.0
        tl.occupy(7.0, 9.0, "a")
        assert tl.ready_time() == 9.0

    def test_overlap_rejected(self):
        tl = ResourceTimeline("r1")
        tl.occupy(0.0, 10.0, "a")
        with pytest.raises(ValueError, match="overlaps"):
            tl.occupy(5.0, 15.0, "b")

    def test_touching_intervals_allowed(self):
        tl = ResourceTimeline("r1")
        tl.occupy(0.0, 10.0, "a")
        tl.occupy(10.0, 20.0, "b")
        assert len(tl.intervals()) == 2

    def test_utilisation(self):
        tl = ResourceTimeline("r1")
        tl.occupy(0.0, 5.0, "a")
        assert tl.utilisation(10.0) == pytest.approx(0.5)


#: quarter-unit grid keeps the generated times well away from TIME_EPS-scale
#: coincidences while still exercising touching, nested and zero-length
#: intervals.
_GRID = 0.25


class TestTimelineMatchesSeedTimeline:
    """Property test: bisect timeline ≡ naive seed timeline."""

    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 120), st.integers(0, 30)), max_size=40
        ),
        queries=st.lists(
            st.tuples(st.integers(0, 160), st.integers(0, 30)),
            min_size=1,
            max_size=12,
        ),
        available=st.integers(0, 40),
    )
    @settings(max_examples=200, deadline=None)
    def test_occupy_ready_earliest_match(self, ops, queries, available):
        fast = ResourceTimeline("r", available_from=available * _GRID)
        naive = SeedResourceTimeline("r", available_from=available * _GRID)
        for k, (start_units, duration_units) in enumerate(ops):
            start = start_units * _GRID
            finish = (start_units + duration_units) * _GRID
            job = f"job{k}"
            naive_raised = fast_raised = False
            try:
                naive.occupy(start, finish, job)
            except ValueError:
                naive_raised = True
            try:
                fast.occupy(start, finish, job)
            except ValueError:
                fast_raised = True
            assert fast_raised == naive_raised, (start, finish, naive.intervals())
        assert fast.intervals() == naive.intervals()
        assert fast.ready_time() == naive.ready_time()
        for ready_units, duration_units in queries:
            ready = ready_units * _GRID
            duration = duration_units * _GRID
            for insertion in (True, False):
                assert fast.earliest_start(
                    ready, duration, insertion=insertion
                ) == naive.earliest_start(ready, duration, insertion=insertion), (
                    ready,
                    duration,
                    insertion,
                    fast.intervals(),
                )

    def test_zero_length_task_can_slot_before_ready_boundary(self):
        # zero-duration tasks take the seed's full gap scan; make sure the
        # two implementations agree on the degenerate path too
        fast = ResourceTimeline("r")
        naive = SeedResourceTimeline("r")
        for timeline in (fast, naive):
            timeline.occupy(0.0, 5.0, "a")
            timeline.occupy(5.0, 9.0, "b")
        assert fast.earliest_start(5.0, 0.0) == naive.earliest_start(5.0, 0.0)
        assert fast.earliest_start(4.0, 0.0) == naive.earliest_start(4.0, 0.0)


#: epsilon-scale grid for the gap-accept/occupy consistency property: values
#: a few TIME_EPS apart are exactly where ``+ eps`` and ``- eps`` comparisons
#: round differently.
_EPS_GRID = 1e-9


class TestGapAcceptOccupyConsistency:
    """``earliest_start`` must never hand out a slot ``occupy`` rejects.

    Regression for an epsilon asymmetry: the gap scan accepted slots with
    ``cursor + duration <= start + TIME_EPS`` while ``occupy`` flags an
    overlap on ``start < finish - TIME_EPS``.  For epsilon-scale operands
    the two float expressions round differently, so an epsilon-duration job
    could be booked into a gap that ``occupy`` (and the schedule validator)
    then rejected as overlapping.
    """

    def test_epsilon_duration_gap_found_by_fuzzing(self):
        # minimal counterexample found by fuzzing the pre-fix scan:
        # cursor + duration and start + TIME_EPS both round to
        # 3.0000000000000004e-09, so the old gap accept fired while
        # occupy's ``finish - TIME_EPS`` check still saw an overlap
        tl = ResourceTimeline("r")
        tl.occupy(2e-09, 0.250000002, "j0")
        tl.occupy(0.5, 1.5, "j1")
        duration = 2e-09
        slot = tl.earliest_start(1e-09, duration)
        tl.occupy(slot, slot + duration, "j2")

    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 40), st.integers(0, 8)), max_size=12
        ),
        queries=st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 8)),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=300, deadline=None)
    def test_epsilon_scale_slots_are_always_bookable(self, ops, queries):
        tl = ResourceTimeline("r")
        for k, (start_units, duration_units) in enumerate(ops):
            start = start_units * _EPS_GRID
            finish = start + duration_units * _EPS_GRID
            try:
                tl.occupy(start, finish, f"j{k}")
            except ValueError:
                pass  # overlapping op: keep the timeline, drop the interval
        booked = tl.intervals()
        for ready_units, duration_units in queries:
            ready = ready_units * _EPS_GRID
            duration = duration_units * _EPS_GRID
            for insertion in (True, False):
                slot = tl.earliest_start(ready, duration, insertion=insertion)
                probe = ResourceTimeline("probe")
                for s, f, j in booked:
                    probe.occupy(s, f, j)
                probe.occupy(slot, slot + duration, "candidate")


def _application_cases():
    yield generate_blast_case(24, ccr=1.0, beta=0.5, omega_dag=300.0, seed=4)
    yield generate_wien2k_case(16, ccr=1.0, beta=0.5, omega_dag=300.0, seed=4)


class TestKernelEquivalence:
    """The fast kernel must be bit-identical to the frozen seed kernel."""

    def test_static_heft_identical_on_random_dags(self, make_case):
        resources = [f"r{i + 1}" for i in range(12)]
        for case in (make_case(v=60, omega_dag=300.0, seed=s) for s in (0, 1, 2)):
            fast = heft_schedule(case.workflow, case.costs, resources)
            seed = seed_heft_schedule(case.workflow, case.costs, resources)
            assert fast.to_dict() == seed.to_dict()
            assert fast.makespan() == seed.makespan()

    def test_static_heft_identical_on_application_dags(self):
        resources = [f"r{i + 1}" for i in range(10)]
        for case in _application_cases():
            fast = heft_schedule(case.workflow, case.costs, resources)
            seed = seed_heft_schedule(case.workflow, case.costs, resources)
            assert fast.to_dict() == seed.to_dict()

    def test_aheft_reschedule_identical_mid_flight(self, make_case):
        resources = [f"r{i + 1}" for i in range(8)]
        for case in (make_case(v=60, omega_dag=300.0, seed=s) for s in (5, 6)):
            previous = heft_schedule(case.workflow, case.costs, resources)
            clock = previous.makespan() * 0.35
            grown = resources + ["g1", "g2", "g3"]
            fast = aheft_reschedule(
                case.workflow,
                case.costs,
                grown,
                clock=clock,
                previous_schedule=previous,
            )
            seed = seed_aheft_reschedule(
                case.workflow,
                case.costs,
                grown,
                clock=clock,
                previous_schedule=previous,
            )
            assert fast.to_dict() == seed.to_dict()

    def test_aheft_reschedule_identical_without_respect_running(self, make_case):
        resources = [f"r{i + 1}" for i in range(6)]
        case = make_case(v=60, omega_dag=300.0, seed=9)
        previous = heft_schedule(case.workflow, case.costs, resources)
        clock = previous.makespan() * 0.5
        kwargs = dict(
            clock=clock, previous_schedule=previous, respect_running=False
        )
        fast = aheft_reschedule(case.workflow, case.costs, resources, **kwargs)
        seed = seed_aheft_reschedule(case.workflow, case.costs, resources, **kwargs)
        assert fast.to_dict() == seed.to_dict()

    def test_adaptive_run_identical_over_pool_events(self, make_case):
        model = ResourceChangeModel(
            initial_size=8, interval=150.0, fraction=0.2, max_events=6
        )
        for case in (make_case(v=80, omega_dag=300.0, seed=3),):
            pool = model.build_pool()
            fast = run_adaptive(
                case.workflow, case.costs, pool, scheduler=AHEFTScheduler()
            )
            seed = run_adaptive(
                case.workflow, case.costs, pool, scheduler=SeedAHEFTScheduler()
            )
            assert fast.final_schedule.to_dict() == seed.final_schedule.to_dict()
            assert fast.makespan == seed.makespan
            assert fast.rescheduling_count == seed.rescheduling_count

    def test_adaptive_run_identical_on_application_dag(self):
        model = ResourceChangeModel(
            initial_size=6, interval=200.0, fraction=0.25, max_events=5
        )
        case = generate_blast_case(20, ccr=1.0, beta=0.5, omega_dag=300.0, seed=8)
        pool = model.build_pool()
        fast = run_adaptive(case.workflow, case.costs, pool, scheduler=AHEFTScheduler())
        seed = run_adaptive(
            case.workflow, case.costs, pool, scheduler=SeedAHEFTScheduler()
        )
        assert fast.final_schedule.to_dict() == seed.final_schedule.to_dict()
        assert fast.makespan == seed.makespan

    def test_priority_cache_invalidated_by_workflow_mutation(self, make_case):
        from repro.scheduling.heft import heft_priority_order
        from repro.workflow.analysis import upward_ranks

        case = make_case(v=20, omega_dag=300.0, seed=1)
        wf, costs = case.workflow, case.costs
        resources = ["r1", "r2", "r3"]
        order_before = heft_priority_order(wf, costs, resources)
        ranks_before = upward_ranks(wf, costs, resources)
        # second call must come from the cache and be equal
        assert heft_priority_order(wf, costs, resources) == order_before
        # structural mutation invalidates both ranks and order
        entry = wf.entry_jobs()[0]
        exit_job = wf.exit_jobs()[-1]
        wf.add_job("late_straggler")
        wf.add_edge(entry, "late_straggler", data=5.0)
        wf.add_edge("late_straggler", exit_job, data=5.0)
        # the new job needs costs before ranks can be recomputed; in-place
        # cost-table edits must be followed by invalidate_cache()
        costs.base_costs["late_straggler"] = 100.0
        costs.invalidate_cache()
        ranks_after = upward_ranks(wf, costs, resources)
        assert "late_straggler" in ranks_after
        # the extra entry -> straggler -> exit path can only raise the
        # entry's rank, never lower it
        assert ranks_after[entry] >= ranks_before[entry]
        assert "late_straggler" in heft_priority_order(wf, costs, resources)


class TestSchedule:
    def _schedule(self):
        s = Schedule(name="test")
        s.add(Assignment("a", "r1", 0.0, 5.0))
        s.add(Assignment("b", "r1", 5.0, 9.0))
        s.add(Assignment("c", "r2", 1.0, 4.0))
        return s

    def test_basic_queries(self):
        s = self._schedule()
        assert len(s) == 3
        assert "a" in s and "ghost" not in s
        assert s.resource_of("c") == "r2"
        assert s.scheduled_finish_time("b") == 9.0
        assert s.makespan() == 9.0

    def test_empty_makespan_zero(self):
        assert Schedule().makespan() == 0.0

    def test_assignments_on_sorted(self):
        s = self._schedule()
        on_r1 = s.assignments_on("r1")
        assert [a.job_id for a in on_r1] == ["a", "b"]

    def test_replace_assignment(self):
        s = self._schedule()
        s.add(Assignment("a", "r2", 0.0, 3.0))
        assert s.resource_of("a") == "r2"
        assert len(s) == 3

    def test_copy_is_independent(self):
        s = self._schedule()
        clone = s.copy(name="clone")
        clone.add(Assignment("d", "r2", 4.0, 6.0))
        assert "d" in clone and "d" not in s

    def test_timelines_reflect_assignments(self):
        s = self._schedule()
        timelines = s.timelines(["r1", "r2", "r3"])
        assert timelines["r1"].ready_time() == 9.0
        assert timelines["r3"].ready_time() == 0.0

    def test_gantt_rows_and_dict(self):
        s = self._schedule()
        rows = s.gantt_rows()
        assert rows[0][0] == "r1"
        as_dict = s.to_dict()
        assert as_dict["a"]["resource"] == "r1"
        assert as_dict["c"]["finish"] == 4.0

    def test_resources_used(self):
        assert self._schedule().resources_used() == ["r1", "r2"]


class TestExecutionState:
    def test_initial_state(self):
        state = ExecutionState.initial(["a", "b"])
        assert state.job_status("a") is JobStatus.NOT_STARTED
        assert state.not_started_jobs() == ["a", "b"]
        assert not state.all_finished()

    def test_record_lifecycle(self):
        state = ExecutionState.initial(["a"])
        state.record_start("a", "r1", 1.0)
        assert state.is_running("a")
        state.record_finish("a", 3.0)
        assert state.is_finished("a")
        assert state.actual_finish["a"] == 3.0
        assert state.data_available_at("a", "r1") == 3.0
        assert state.all_finished()

    def test_finish_without_start_raises(self):
        state = ExecutionState.initial(["a"])
        with pytest.raises(ValueError):
            state.record_finish("a", 3.0)

    def test_data_arrival_keeps_earliest(self):
        state = ExecutionState.initial(["a"])
        state.record_data_arrival("a", "r2", 10.0)
        state.record_data_arrival("a", "r2", 8.0)
        state.record_data_arrival("a", "r2", 12.0)
        assert state.data_available_at("a", "r2") == 8.0

    def test_from_schedule_statuses(self):
        schedule = Schedule()
        schedule.add(Assignment("a", "r1", 0.0, 5.0))
        schedule.add(Assignment("b", "r1", 5.0, 12.0))
        schedule.add(Assignment("c", "r2", 20.0, 25.0))
        state = ExecutionState.from_schedule(schedule, clock=10.0)
        assert state.is_finished("a")
        assert state.is_running("b")
        assert state.is_not_started("c")
        assert state.executed_on["a"] == "r1"
        assert state.actual_finish["a"] == 5.0
        assert state.data_available_at("a", "r1") == 5.0

    def test_from_schedule_with_explicit_job_list(self):
        schedule = Schedule()
        schedule.add(Assignment("a", "r1", 0.0, 5.0))
        state = ExecutionState.from_schedule(schedule, clock=1.0, jobs=["a", "b"])
        assert state.job_status("b") is JobStatus.NOT_STARTED
