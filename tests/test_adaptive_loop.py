"""Tests for the adaptive rescheduling loop and the three strategy runners."""

import pytest

from repro.core.adaptive import (
    AdaptiveReschedulingLoop,
    run_adaptive,
    run_dynamic,
    run_static,
)
from repro.generators.blast import generate_blast_case
from repro.resources.dynamics import ResourceChangeModel
from repro.resources.pool import ResourcePool
from repro.resources.resource import Resource
from repro.scheduling.aheft import AHEFTScheduler
from repro.scheduling.validation import validate_schedule


@pytest.fixture
def blast_case():
    return generate_blast_case(20, ccr=1.0, beta=0.5, omega_dag=100.0, seed=5)


@pytest.fixture
def dynamic_pool():
    model = ResourceChangeModel(initial_size=3, interval=150.0, fraction=0.35, max_events=20)
    return model.build_pool()


class TestRunStatic:
    def test_static_uses_only_initial_resources(self, blast_case, dynamic_pool):
        result = run_static(blast_case.workflow, blast_case.costs, dynamic_pool)
        used = set(result.final_schedule.resources_used())
        assert used <= set(dynamic_pool.initial_resources())

    def test_static_simulated_trace_matches_plan(self, blast_case, dynamic_pool):
        result = run_static(blast_case.workflow, blast_case.costs, dynamic_pool, simulate=True)
        assert result.trace is not None
        assert result.trace.makespan() == pytest.approx(result.final_schedule.makespan())

    def test_static_no_resources_raises(self, blast_case):
        pool = ResourcePool([Resource("r1", available_from=10.0)])
        with pytest.raises(ValueError):
            run_static(blast_case.workflow, blast_case.costs, pool)


class TestAdaptiveLoop:
    def test_initial_schedule_equals_static_heft(self, blast_case, dynamic_pool):
        static = run_static(blast_case.workflow, blast_case.costs, dynamic_pool)
        adaptive = run_adaptive(blast_case.workflow, blast_case.costs, dynamic_pool)
        assert adaptive.initial_makespan == pytest.approx(static.makespan)

    def test_adaptive_never_worse_than_static(self, blast_case, dynamic_pool):
        """The accept-if-better rule guarantees AHEFT <= HEFT (paper's key property)."""
        static = run_static(blast_case.workflow, blast_case.costs, dynamic_pool)
        adaptive = run_adaptive(blast_case.workflow, blast_case.costs, dynamic_pool)
        assert adaptive.makespan <= static.makespan + 1e-9

    def test_adaptive_improves_on_constrained_pool(self, blast_case, dynamic_pool):
        """With a tiny initial pool and frequent additions AHEFT should win outright."""
        static = run_static(blast_case.workflow, blast_case.costs, dynamic_pool)
        adaptive = run_adaptive(blast_case.workflow, blast_case.costs, dynamic_pool)
        assert adaptive.makespan < static.makespan
        assert adaptive.rescheduling_count >= 1

    def test_final_schedule_feasible_against_pool(self, blast_case, dynamic_pool):
        adaptive = run_adaptive(blast_case.workflow, blast_case.costs, dynamic_pool)
        assert (
            validate_schedule(
                blast_case.workflow, blast_case.costs, adaptive.final_schedule, pool=dynamic_pool
            )
            == []
        )

    def test_decisions_recorded_for_events_before_completion(self, blast_case, dynamic_pool):
        adaptive = run_adaptive(blast_case.workflow, blast_case.costs, dynamic_pool)
        assert adaptive.evaluated_events >= adaptive.rescheduling_count
        for decision in adaptive.decisions:
            assert decision.time < adaptive.initial_makespan
            if decision.adopted:
                assert decision.candidate_makespan < decision.previous_makespan

    def test_events_after_completion_ignored(self, blast_case):
        pool = ResourcePool([Resource("r1"), Resource("r2")])
        # one extra resource appears long after any plausible makespan
        pool.add(Resource("r3", available_from=1e9))
        adaptive = run_adaptive(blast_case.workflow, blast_case.costs, pool)
        assert adaptive.evaluated_events == 0
        assert adaptive.makespan == adaptive.initial_makespan

    def test_static_pool_gives_no_decisions(self, blast_case):
        pool = ResourcePool([Resource("r1"), Resource("r2"), Resource("r3")])
        adaptive = run_adaptive(blast_case.workflow, blast_case.costs, pool)
        assert adaptive.decisions == []

    def test_always_accept_mode_adopts_every_candidate(self, blast_case, dynamic_pool):
        loop = AdaptiveReschedulingLoop(AHEFTScheduler(), accept_only_if_better=False)
        result = loop.run(blast_case.workflow, blast_case.costs, dynamic_pool)
        assert all(decision.adopted for decision in result.decisions)

    def test_accept_rule_caps_regressions_from_always_accept(self, blast_case, dynamic_pool):
        guarded = run_adaptive(blast_case.workflow, blast_case.costs, dynamic_pool)
        always = run_adaptive(
            blast_case.workflow, blast_case.costs, dynamic_pool, accept_only_if_better=False
        )
        assert guarded.makespan <= always.makespan + 1e-9

    def test_explicit_event_list_overrides_pool_events(self, blast_case, dynamic_pool):
        loop = AdaptiveReschedulingLoop(AHEFTScheduler())
        result = loop.run(blast_case.workflow, blast_case.costs, dynamic_pool, events=[])
        assert result.decisions == []


class TestRunDynamic:
    def test_dynamic_executes_everything(self, blast_case, dynamic_pool):
        result = run_dynamic(blast_case.workflow, blast_case.costs, dynamic_pool)
        assert result.trace is not None
        assert len(result.trace.jobs()) == blast_case.workflow.num_jobs

    def test_dynamic_strategy_name(self, blast_case, dynamic_pool):
        result = run_dynamic(blast_case.workflow, blast_case.costs, dynamic_pool)
        assert result.strategy == "MinMin"

    def test_plan_ahead_beats_dynamic_on_random_dags(self, make_case):
        """The paper's central comparison: HEFT/AHEFT beat dynamic Min-Min."""
        case = make_case(v=40, out_degree=0.3, ccr=5.0, omega_dag=100.0, seed=11)
        pool = ResourceChangeModel(initial_size=8, interval=500.0, fraction=0.2).build_pool()
        static = run_static(case.workflow, case.costs, pool)
        adaptive = run_adaptive(case.workflow, case.costs, pool)
        dynamic = run_dynamic(case.workflow, case.costs, pool)
        assert adaptive.makespan <= static.makespan + 1e-9
        assert dynamic.makespan > adaptive.makespan


class TestSameTimeEvents:
    def test_same_time_pool_events_are_merged_not_dropped(self, small_random_case):
        """Two events= entries at one time must both be honoured."""
        from repro.core.adaptive import AdaptiveReschedulingLoop
        from repro.resources.pool import PoolEvent, ResourcePool
        from repro.resources.resource import Resource

        case = small_random_case
        pool = ResourcePool(
            [Resource("r1", available_until=100.0)]
            + [Resource(f"r{i}") for i in range(2, 5)]
            + [Resource("r9", available_from=100.0)]
        )
        loop = AdaptiveReschedulingLoop()
        result = loop.run(
            case.workflow,
            case.costs,
            pool,
            events=[
                PoolEvent(time=100.0, added=("r9",)),
                PoolEvent(time=100.0, removed=("r1",)),
            ],
        )
        # one merged decision at t=100 that saw both the join and the removal
        assert len(result.decisions) == 1
        decision = result.decisions[0]
        assert "r9" in decision.event and "r1" in decision.event
        # the removal was honoured: nothing unfinished stays on r1
        for assignment in result.final_schedule:
            if assignment.resource_id == "r1":
                assert assignment.finish <= 100.0 + 1e-9 or assignment.start < 100.0
