"""Strategy-registry contract: construction, kinds, runners, injection."""

from __future__ import annotations

import pytest

from repro.core.adaptive import resolve_strategy, run_adaptive, run_dynamic, run_static
from repro.experiments.runner import (
    ExperimentCase,
    available_strategy_names,
    resolve_strategy_runner,
    run_case,
)
from repro.resources.dynamics import StaticResourceModel
from repro.scheduling import (
    SCHEDULERS,
    available_schedulers,
    make_scheduler,
    register_scheduler,
    scheduler_kind,
    scheduler_parameters,
    scheduler_summary,
)


class TestRegistryApi:
    def test_make_scheduler_unknown_name_raises_with_listing(self):
        with pytest.raises(KeyError, match="registered"):
            make_scheduler("nope")

    def test_params_pass_through_to_the_factory(self):
        scheduler = make_scheduler("heft", insertion=False)
        assert scheduler.insertion is False
        scheduler = make_scheduler("random_static", seed=42)
        assert scheduler.seed == 42

    def test_scheduler_configs_are_frozen_dataclasses(self):
        """The new strategy configs are immutable (registry contract)."""
        import dataclasses

        for name in ("cpop", "lookahead_heft", "heft_dup"):
            scheduler = make_scheduler(name)
            assert dataclasses.is_dataclass(scheduler)
            with pytest.raises(dataclasses.FrozenInstanceError):
                scheduler.insertion = False

    def test_kinds_and_summaries_are_registered(self):
        kinds = {name: scheduler_kind(name) for name in available_schedulers()}
        assert kinds["heft"] == "static"
        assert kinds["aheft"] == "adaptive"
        assert kinds["minmin"] == "dynamic"
        assert kinds["cpop"] == "static"
        for name in available_schedulers():
            assert kinds[name] in ("static", "adaptive", "dynamic")
            assert scheduler_summary(name)  # every entry documents itself

    def test_parameters_reflect_constructor_defaults(self):
        params = scheduler_parameters("heft")
        assert params == {"insertion": True}
        assert scheduler_parameters("random_static")["seed"] == 0

    @pytest.mark.parametrize("name", sorted(SCHEDULERS))
    def test_unknown_keyword_rejected_uniformly(self, name):
        """Every entry raises one TypeError shape naming the strategy.

        Regression: ``make_scheduler`` used to forward keywords straight
        to the factory, so the error was whatever the constructor raised
        — a dataclass ``__init__`` message naming neither the strategy
        nor its valid parameters, and nothing at all for a factory that
        swallowed ``**kwargs``.
        """
        with pytest.raises(TypeError, match=rf"scheduler '{name}'"):
            make_scheduler(name, definitely_not_a_parameter=1)

    @pytest.mark.parametrize("name", sorted(SCHEDULERS))
    def test_parameters_report_factory_defaults(self, name):
        import inspect

        params = scheduler_parameters(name)
        signature = inspect.signature(SCHEDULERS[name].factory)
        for param_name, default in params.items():
            parameter = signature.parameters[param_name]
            expected = (
                None
                if parameter.default is inspect.Parameter.empty
                else parameter.default
            )
            assert default == expected

    def test_unknown_keyword_error_lists_valid_parameters(self):
        with pytest.raises(TypeError, match="insertion"):
            make_scheduler("heft", nope=1)

    def test_var_keyword_factory_opts_out_of_validation(self):
        from repro.scheduling.registry import validate_scheduler_params

        def flexible(**kwargs):  # explicitly accepts anything
            return kwargs

        validate_scheduler_params("flexible", flexible, {"anything": 1})
        with pytest.raises(TypeError, match="scheduler 'strict'"):
            validate_scheduler_params("strict", lambda a=1: a, {"b": 2})

    def test_duplicate_registration_is_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scheduler("heft", kind="static")(object)

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            register_scheduler("x", kind="quantum")(object)

    def test_registry_and_legacy_names_union(self):
        names = available_strategy_names()
        assert "heft" in names and "HEFT" in names and "cpop" in names


class TestStrategyInjection:
    def test_resolve_strategy_rejects_both_arguments(self):
        with pytest.raises(ValueError, match="not both"):
            resolve_strategy("heft", make_scheduler("heft"))

    def test_run_adaptive_rejects_non_replanning_strategy(self, small_random_case, make_pool):
        with pytest.raises(ValueError, match="reschedule"):
            run_adaptive(
                small_random_case.workflow,
                small_random_case.costs,
                make_pool(4),
                strategy="heft",
            )

    def test_run_dynamic_rejects_non_batch_strategy(self, small_random_case, make_pool):
        with pytest.raises(ValueError, match="map_ready_jobs"):
            run_dynamic(
                small_random_case.workflow,
                small_random_case.costs,
                make_pool(4),
                strategy="cpop",
            )

    def test_run_static_accepts_every_registered_strategy(
        self, small_random_case, make_pool
    ):
        pool = make_pool(4)
        for name in available_schedulers():
            result = run_static(
                small_random_case.workflow,
                small_random_case.costs,
                pool,
                strategy=name,
            )
            assert result.makespan > 0

    def test_run_adaptive_cpop_uses_a_late_join(self, small_random_case, make_pool):
        """A CPOP adaptive loop reacts to pool growth like AHEFT does."""
        pool = make_pool(3, joins=(30.0,))
        result = run_adaptive(
            small_random_case.workflow,
            small_random_case.costs,
            pool,
            strategy="cpop",
        )
        assert result.evaluated_events >= 1

    def test_adaptive_prefix_runs_registry_strategy_in_the_loop(
        self, small_random_case
    ):
        experiment = ExperimentCase(
            case=small_random_case, resource_model=StaticResourceModel(size=4)
        )
        result = run_case(
            experiment, strategies=("heft", "adaptive:cpop", "adaptive:minmin")
        )
        assert set(result.makespans) == {"heft", "adaptive:cpop", "adaptive:minmin"}
        for value in result.makespans.values():
            assert value > 0

    def test_unknown_strategy_name_in_run_case_raises(self, small_random_case):
        experiment = ExperimentCase(
            case=small_random_case, resource_model=StaticResourceModel(size=4)
        )
        with pytest.raises(KeyError, match="available"):
            run_case(experiment, strategies=("definitely_not_registered",))

    def test_resolver_covers_every_registry_kind(self):
        for name in available_schedulers():
            assert callable(resolve_strategy_runner(name))
        assert callable(resolve_strategy_runner("adaptive:sufferage"))
        with pytest.raises(KeyError):
            resolve_strategy_runner("adaptive:not_a_strategy")

    def test_adaptive_prefix_rejects_non_replanning_strategies_at_parse_time(self):
        """adaptive:olb must fail at resolution, not crash mid-sweep."""
        with pytest.raises(KeyError, match="reschedule"):
            resolve_strategy_runner("adaptive:olb")
        from repro.cli import EXIT_ERROR, main

        assert (
            main(
                [
                    "sweep",
                    "--scenario",
                    "static",
                    "--quick",
                    "--strategies",
                    "adaptive:olb",
                    "--out",
                    "/tmp/never_written.json",
                ]
            )
            == EXIT_ERROR
        )


class TestMultiTenantStrategyInjection:
    def test_planner_validates_strategy_early(self, make_pool):
        from repro.core.multi_tenant import MultiTenantPlanner

        with pytest.raises(ValueError, match="reschedule"):
            MultiTenantPlanner(make_pool(4), strategy="heft")
        with pytest.raises(KeyError):
            MultiTenantPlanner(make_pool(4), strategy="nope")

    def test_planner_rejects_ambiguous_factory_plus_strategy(self, make_pool):
        from repro.core.multi_tenant import MultiTenantPlanner
        from repro.scheduling.aheft import AHEFTScheduler

        with pytest.raises(ValueError, match="not both"):
            MultiTenantPlanner(
                make_pool(4), scheduler_factory=AHEFTScheduler, strategy="aheft"
            )

    def test_sweep_multi_workflow_carries_the_strategy_dimension(self):
        from repro.experiments.multi_tenant import MultiTenantConfig
        from repro.experiments.sweep import sweep_multi_workflow

        base = MultiTenantConfig(
            tenants=2, resources=5, v=10, parallelism=5, max_arrivals=2, seed=0
        )
        points = sweep_multi_workflow(
            arrival_rates=[0.004],
            tenant_counts=[2],
            scenarios=["static"],
            policies=["fifo"],
            strategies=["aheft", "cpop"],
            base_config=base,
        )
        assert [point.strategy for point in points] == ["aheft", "cpop"]
        for point in points:
            assert point.as_dict()["strategy"] == point.strategy
            assert point.workflows > 0

    def test_registered_but_fresh_strategy_reaches_the_shared_grid(self, make_pool):
        """A runtime-registered replanner is usable end to end."""
        from repro.scheduling.aheft import AHEFTScheduler
        from repro.simulation.shared_grid import SharedGridExecutor
        from repro.workload.streams import TenantSpec, WorkloadStream

        name = "fresh_for_grid_test"
        register_scheduler(name, kind="adaptive", summary="ephemeral")(AHEFTScheduler)
        try:
            specs = [
                TenantSpec(
                    name="t1",
                    arrival_rate=0.003,
                    max_arrivals=1,
                    v=8,
                    parallelism=4,
                    mix=(("random", 1.0),),
                )
            ]
            stream = WorkloadStream(specs, seed=1, horizon=2000.0)
            result = SharedGridExecutor(
                stream.arrivals(), make_pool(4), strategy=name
            ).run()
            assert len(result.outcomes) == 1
        finally:
            SCHEDULERS.pop(name, None)
