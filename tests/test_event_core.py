"""Property-based tests of the shared discrete-event core (ISSUE 7).

The determinism contract of :mod:`repro.simulation.event_core` is what the
bit-identity gates of every execution path rest on, so it gets its own
hypothesis suite:

* events fire in ``(time, priority, insertion-sequence)`` order, for any
  batch of postings, and replaying the same batch yields the same order,
* same-timestamp ties break by priority then insertion order — documented
  and deterministic, never hash- or heap-internal order,
* posting an event before the current logical time raises
  :class:`SimulationError` (out-of-order injection is an error, not a
  silent reorder),
* cancelled events are skipped, ``stop()`` halts the loop, the clock
  never moves backwards,
* the instrumentation counters count exactly the handlers that ran.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.event_core import (
    Event,
    EventCore,
    EventKind,
    SimulationEngine,
    SimulationError,
)

SETTINGS = settings(max_examples=60, deadline=None)

#: (time, priority) postings; coarse float grid so same-timestamp ties are
#: common rather than vanishingly rare
POSTINGS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=8).map(lambda t: t * 0.5),
        st.integers(min_value=-2, max_value=2),
    ),
    min_size=1,
    max_size=24,
)


def drain(postings):
    """Post everything up front, run, return the fired posting indices."""
    core = EventCore()
    fired = []
    for index, (time, priority) in enumerate(postings):
        core.post(time, lambda i=index: fired.append(i), priority=priority)
    core.run()
    return fired


@given(POSTINGS)
@SETTINGS
def test_events_fire_in_time_priority_sequence_order(postings):
    fired = drain(postings)
    assert len(fired) == len(postings)
    keys = [(postings[i][0], postings[i][1], i) for i in fired]
    assert keys == sorted(keys)


@given(POSTINGS)
@SETTINGS
def test_replay_is_deterministic(postings):
    assert drain(postings) == drain(postings)


@given(POSTINGS)
@SETTINGS
def test_clock_is_monotone_and_matches_event_times(postings):
    core = EventCore()
    clocks = []
    for time, priority in postings:
        core.post(time, lambda: clocks.append(core.now), priority=priority)
    end = core.run()
    assert clocks == sorted(clocks)
    assert end == max(time for time, _ in postings)
    assert core.processed_events == len(postings)


def test_same_timestamp_ties_break_by_priority_then_insertion():
    core = EventCore()
    fired = []
    core.post(1.0, lambda: fired.append("late-posted-low-pri"), priority=1)
    core.post(1.0, lambda: fired.append("first-in"), priority=0)
    core.post(1.0, lambda: fired.append("second-in"), priority=0)
    core.post(0.0, lambda: fired.append("earlier"), priority=5)
    core.run()
    assert fired == ["earlier", "first-in", "second-in", "late-posted-low-pri"]


def test_posting_before_current_time_raises():
    core = EventCore(start_time=10.0)
    with pytest.raises(SimulationError, match="before current time"):
        core.post(9.0, lambda: None)


def test_posting_into_the_past_from_a_handler_raises():
    core = EventCore()
    core.post(5.0, lambda: core.post(4.0, lambda: None))
    with pytest.raises(SimulationError, match="before current time"):
        core.run()


def test_posting_within_epsilon_of_now_is_clamped_not_rejected():
    core = EventCore(start_time=1.0)
    event = core.post(1.0 - 1e-13, lambda: None)
    assert event.time == 1.0


def test_negative_delay_raises():
    core = EventCore()
    with pytest.raises(SimulationError, match="non-negative"):
        core.schedule_in(-1.0, lambda: None)


def test_cancelled_events_are_skipped():
    core = EventCore()
    fired = []
    keep = core.post(1.0, lambda: fired.append("keep"))
    drop = core.post(2.0, lambda: fired.append("drop"), kind=EventKind.DEVIATION)
    core.post(3.0, lambda: fired.append("tail"))
    drop.cancel()
    core.run()
    assert fired == ["keep", "tail"]
    assert not keep.cancelled and drop.cancelled


def test_stop_halts_after_current_event():
    core = EventCore()
    fired = []
    core.post(1.0, lambda: fired.append(1))
    core.post(2.0, lambda: (fired.append(2), core.stop()))
    core.post(3.0, lambda: fired.append(3))
    assert core.run() == 2.0
    assert fired == [1, 2]
    assert core.pending_events == 1


def test_run_until_advances_clock_without_firing_later_events():
    core = EventCore()
    fired = []
    core.post(1.0, lambda: fired.append(1))
    core.post(5.0, lambda: fired.append(5))
    assert core.run(until=3.0) == 3.0
    assert fired == [1]


def test_typed_events_carry_kind_and_label():
    core = EventCore()
    event = core.post(1.0, lambda: None, kind=EventKind.ARRIVAL, label="arrival:w1")
    assert event.kind is EventKind.ARRIVAL
    assert event.label == "arrival:w1"
    # legacy APIs stay untyped
    assert core.schedule_at(2.0, lambda: None).kind is EventKind.GENERIC
    assert core.schedule_in(1.0, lambda: None).kind is EventKind.GENERIC


def test_max_events_guard_trips_on_runaway_loops():
    core = EventCore(max_events=10)

    def reschedule():
        core.schedule_in(1.0, reschedule)

    core.post(0.0, reschedule)
    with pytest.raises(SimulationError, match="maximum of 10 events"):
        core.run()


def test_instrumentation_counts_exactly_the_fired_handlers():
    EventCore.instrument(True)
    try:
        core = EventCore()
        dropped = core.post(1.0, lambda: None)
        dropped.cancel()
        for t in (1.0, 2.0, 3.0):
            core.post(t, lambda: None)
        core.run()
        stats = dict(EventCore.stats)
    finally:
        EventCore.instrument(False)
    assert stats["events"] == 3
    assert stats["dispatch_seconds"] >= 0.0
    assert stats["handler_seconds"] >= 0.0
    # instrument() resets the counters on every toggle
    assert EventCore.stats["events"] == 0


def test_simulation_engine_alias_and_event_ordering_dataclass():
    assert SimulationEngine is EventCore
    early = Event(time=1.0, priority=0, sequence=0, callback=lambda: None)
    late = Event(time=1.0, priority=0, sequence=1, callback=lambda: None)
    assert early < late


def test_run_until_in_the_past_never_rewinds_the_clock():
    """Regression: ``run(until=t)`` with ``t < now`` used to rewind the clock.

    The loop assigned ``self._now = until`` whenever the next event lay
    beyond ``until`` — even when ``until`` was *earlier* than the current
    logical time, violating the documented "clock never moves backwards"
    contract (and making a subsequent ``post(now)`` of the old now raise).
    """
    core = EventCore()
    core.post(5.0, lambda: None)
    core.post(10.0, lambda: None)
    assert core.run(until=7.0) == 7.0
    # a second run bounded by an earlier horizon must clamp, not rewind
    assert core.run(until=3.0) == 7.0
    assert core.now == 7.0
    # the clock still advances normally afterwards
    assert core.run(until=10.0) == 10.0


def test_max_events_guard_leaves_tripping_event_on_the_queue():
    """Regression: the runaway event used to be popped before the raise.

    Post-mortem inspection via ``pending_events``/``peek_next_time`` was
    silently missing the very event that tripped the limit.
    """
    core = EventCore(max_events=2)
    for t in (1.0, 2.0, 3.0):
        core.post(t, lambda: None)
    with pytest.raises(SimulationError, match="maximum of 2 events"):
        core.run()
    assert core.pending_events == 1
    assert core.peek_next_time() == 3.0


#: interleaved operations against a live core: post a future event, run up
#: to an arbitrary horizon (possibly in the past), or request a stop
CLOCK_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("post"),
            st.integers(min_value=0, max_value=8).map(lambda t: t * 0.5),
            st.integers(min_value=-2, max_value=2),
        ),
        st.tuples(
            st.just("run_until"),
            st.integers(min_value=0, max_value=16).map(lambda t: t * 0.5),
        ),
        st.just(("stop",)),
    ),
    min_size=1,
    max_size=32,
)


@given(CLOCK_OPS)
@SETTINGS
def test_clock_is_monotone_under_random_interleavings(ops):
    """The logical clock never decreases, whatever the caller throws at it.

    Random interleavings of ``post`` (relative future times),
    ``run(until=...)`` with horizons before *and* after the current clock,
    and ``stop()`` — observed from inside handlers and from the run loop's
    return values alike.
    """
    core = EventCore()
    observed = [core.now]

    def note():
        observed.append(core.now)

    for op in ops:
        if op[0] == "post":
            core.post(core.now + op[1], note, priority=op[2])
        elif op[0] == "run_until":
            observed.append(core.run(until=op[1]))
            observed.append(core.now)
        else:
            core.stop()
    observed.append(core.run())
    observed.append(core.now)
    assert all(later >= earlier for earlier, later in zip(observed, observed[1:]))
