"""Seed-stability regression: golden structural hashes of the generators.

Every benchmark ledger in ``benchmarks/baselines/`` assumes that a given
``(parameters, seed)`` pair always produces the *same* priced workflow.  A
refactor of the generators or of the hierarchical seeding
(:mod:`repro.utils.rng`) that silently reshuffles draws would shift every
benchmark at once — and ``repro compare`` would blame the scheduler.
These golden fingerprints pin the generator outputs themselves: the hash
covers the DAG structure (jobs, operations, edges), the edge data volumes
and the computation/communication costs on a canonical resource set.

If a change *intentionally* alters generated cases (new distribution, new
seeding scheme), regenerate the constants below (the failing test prints
the new values) **and** re-bless every benchmark baseline in the same PR.
"""

from __future__ import annotations

import hashlib

from repro.generators.blast import generate_blast_case
from repro.generators.montage import generate_montage_case
from repro.generators.random_dag import RandomDAGParameters, generate_random_case
from repro.generators.wien2k import generate_wien2k_case

#: canonical resource ids the cost fingerprints are evaluated on (lazy
#: per-resource draws are seeded by resource identity, so this also pins
#: the pool-growth pricing path)
RESOURCES = ("r1", "r2", "r3", "r4")

GOLDEN = {
    "random_v30_seed7": "3719ef71f2ba6a69f505",
    "random_v30_seed7_instance1": "39312e479cd940a1a5a1",
    "blast_p12_seed3": "2f95caa5b1b20f036423",
    "wien2k_p8_seed3": "0359e309c22fb2d106f9",
    "montage_p10_seed3": "9c7c9bcf557a4e602ec6",
}


def fingerprint(case) -> str:
    """SHA-256 over structure, operations, data volumes and costs."""
    digest = hashlib.sha256()
    workflow = case.workflow
    for job in workflow.jobs:
        digest.update(f"J|{job}|{workflow.job(job).operation}".encode())
        for rid in RESOURCES:
            digest.update(f"|{case.costs.computation_cost(job, rid)!r}".encode())
        digest.update(b"\n")
    for src, dst, data in workflow.edges():
        digest.update(
            f"E|{src}|{dst}|{data!r}|"
            f"{case.costs.average_communication_cost(src, dst)!r}\n".encode()
        )
    return digest.hexdigest()[:20]


def _build(name: str):
    if name == "random_v30_seed7":
        return generate_random_case(RandomDAGParameters(v=30), seed=7)
    if name == "random_v30_seed7_instance1":
        return generate_random_case(RandomDAGParameters(v=30), seed=7, instance=1)
    if name == "blast_p12_seed3":
        return generate_blast_case(12, ccr=1.0, beta=0.5, omega_dag=100.0, seed=3)
    if name == "wien2k_p8_seed3":
        return generate_wien2k_case(8, ccr=1.0, beta=0.5, omega_dag=100.0, seed=3)
    if name == "montage_p10_seed3":
        return generate_montage_case(10, ccr=1.0, beta=0.5, omega_dag=100.0, seed=3)
    raise KeyError(name)


class TestGoldenFingerprints:
    def test_all_generators_match_golden_hashes(self):
        actual = {name: fingerprint(_build(name)) for name in GOLDEN}
        assert actual == GOLDEN, (
            "generator outputs shifted — if intentional, update GOLDEN to the "
            f"values above and re-bless benchmarks/baselines/: {actual}"
        )

    def test_fingerprint_is_query_order_independent(self):
        """Lazy cost draws must not depend on evaluation order."""
        case_a = generate_random_case(RandomDAGParameters(v=30), seed=7)
        case_b = generate_random_case(RandomDAGParameters(v=30), seed=7)
        # warm case_b's cost cache in reverse order before fingerprinting
        for job in reversed(case_b.workflow.jobs):
            for rid in reversed(RESOURCES):
                case_b.costs.computation_cost(job, rid)
        assert fingerprint(case_a) == fingerprint(case_b)

    def test_instances_differ_but_are_each_stable(self):
        assert GOLDEN["random_v30_seed7"] != GOLDEN["random_v30_seed7_instance1"]
        a = fingerprint(generate_random_case(RandomDAGParameters(v=30), seed=7))
        b = fingerprint(generate_random_case(RandomDAGParameters(v=30), seed=7))
        assert a == b
