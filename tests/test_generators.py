"""Tests for the workflow generators (random, BLAST, WIEN2K, Montage, sample)."""

import pytest

from repro.generators.blast import generate_blast_case, generate_blast_workflow
from repro.generators.costs import assign_edge_data, build_case, draw_base_costs
from repro.generators.montage import generate_montage_case, generate_montage_workflow
from repro.generators.random_dag import (
    RandomDAGParameters,
    generate_random_case,
    generate_random_dag,
)
from repro.generators.sample import (
    R4_JOIN_TIME,
    sample_dag_case,
    sample_dag_cost_model,
    sample_dag_pool,
    sample_dag_workflow,
)
from repro.generators.wien2k import generate_wien2k_case, generate_wien2k_workflow
from repro.workflow.analysis import max_parallelism


class TestCostAssignment:
    def test_base_costs_within_range(self, diamond_workflow):
        base = draw_base_costs(diamond_workflow, omega_dag=50.0, seed=1)
        assert set(base) == set(diamond_workflow.jobs)
        for value in base.values():
            assert 1.0 <= value <= 100.0

    def test_per_operation_costs_shared(self):
        wf = generate_blast_workflow(5)
        base = draw_base_costs(wf, omega_dag=50.0, seed=1, per_operation=True)
        blast_costs = {base[f"blast_{i}"] for i in range(1, 6)}
        assert len(blast_costs) == 1

    def test_invalid_omega_rejected(self, diamond_workflow):
        with pytest.raises(ValueError):
            draw_base_costs(diamond_workflow, omega_dag=0.0, seed=1)

    def test_edge_data_matches_ccr_target(self):
        params = RandomDAGParameters(v=60, out_degree=0.3, ccr=2.0, beta=0.5)
        wf = generate_random_dag(params, seed=9)
        assign_edge_data(wf, ccr=2.0, omega_dag=50.0, seed=9)
        mean_data = sum(d for _, _, d in wf.edges()) / wf.num_edges
        # the draw is U[0, 2*ccr*omega]; the sample mean should be near ccr*omega
        assert mean_data == pytest.approx(2.0 * 50.0, rel=0.35)

    def test_build_case_reports_ccr_close_to_target(self):
        params = RandomDAGParameters(v=60, out_degree=0.3, ccr=5.0, beta=0.5)
        case = generate_random_case(params, seed=4)
        assert case.costs.ccr() == pytest.approx(5.0, rel=0.5)

    def test_case_describe_mentions_parameters(self, small_random_case):
        assert "ccr" in small_random_case.describe()


class TestRandomDAG:
    def test_requested_job_count(self):
        for v in (20, 55, 100):
            wf = generate_random_dag(RandomDAGParameters(v=v), seed=1)
            assert wf.num_jobs == v

    def test_graph_is_connected_dag(self):
        wf = generate_random_dag(RandomDAGParameters(v=50, out_degree=0.2), seed=3)
        wf.validate()
        # every non-entry job has a predecessor, every non-exit one a successor
        for job in wf.jobs:
            assert wf.predecessors(job) or job in wf.entry_jobs()
            assert wf.successors(job) or job in wf.exit_jobs()

    def test_deterministic_for_seed(self):
        params = RandomDAGParameters(v=30)
        a = generate_random_dag(params, seed=7)
        b = generate_random_dag(params, seed=7)
        c = generate_random_dag(params, seed=8)
        assert a.edges() == b.edges()
        assert a.edges() != c.edges()

    def test_alpha_controls_shape(self):
        wide = generate_random_dag(RandomDAGParameters(v=100, alpha=2.0), seed=5)
        narrow = generate_random_dag(RandomDAGParameters(v=100, alpha=0.5), seed=5)
        assert max_parallelism(wide) > max_parallelism(narrow)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RandomDAGParameters(v=1)
        with pytest.raises(ValueError):
            RandomDAGParameters(out_degree=0.0)
        with pytest.raises(ValueError):
            RandomDAGParameters(ccr=-1.0)

    def test_instances_differ(self):
        params = RandomDAGParameters(v=30)
        a = generate_random_case(params, seed=1, instance=0)
        b = generate_random_case(params, seed=1, instance=1)
        assert a.workflow.edges() != b.workflow.edges() or a.costs.base_costs != b.costs.base_costs


class TestBlast:
    def test_job_count_formula(self):
        wf = generate_blast_workflow(8)
        assert wf.num_jobs == 2 * 8 + 2

    def test_shape(self):
        wf = generate_blast_workflow(4)
        assert wf.entry_jobs() == ["split"]
        assert wf.exit_jobs() == ["merge"]
        assert max_parallelism(wf) == 4
        assert set(wf.operations()) == {"FileBreaker", "Blast", "Parse", "Assembler"}

    def test_two_way_parallelism_is_the_paper_figure(self):
        """Fig. 6: six jobs with two-way parallelism."""
        wf = generate_blast_workflow(2)
        assert wf.num_jobs == 6

    def test_case_params_recorded(self):
        case = generate_blast_case(4, ccr=2.0, beta=0.25, seed=3)
        assert case.params["generator"] == "blast"
        assert case.params["parallelism"] == 4

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            generate_blast_workflow(0)


class TestWien2k:
    def test_job_count_formula(self):
        wf = generate_wien2k_workflow(10)
        assert wf.num_jobs == 2 * 10 + 8

    def test_fermi_is_a_synchronisation_point(self):
        wf = generate_wien2k_workflow(5)
        assert len(wf.predecessors("lapw2_fermi")) == 5
        assert len(wf.successors("lapw2_fermi")) == 5

    def test_tail_is_sequential(self):
        wf = generate_wien2k_workflow(3)
        assert wf.successors("mixer") == ["converged"]
        assert wf.exit_jobs() == ["stageout"]

    def test_case_generation(self):
        case = generate_wien2k_case(4, ccr=1.0, beta=0.5, seed=1)
        assert case.num_jobs == 16
        assert case.params["generator"] == "wien2k"

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            generate_wien2k_workflow(0)


class TestMontage:
    def test_structure(self):
        wf = generate_montage_workflow(6)
        wf.validate()
        assert wf.num_jobs == 3 * 6 + 6
        assert wf.exit_jobs() == ["mjpeg"]
        assert max_parallelism(wf) >= 6

    def test_case_generation(self):
        case = generate_montage_case(4, seed=2)
        assert case.params["generator"] == "montage"

    def test_invalid_parallelism(self):
        with pytest.raises(ValueError):
            generate_montage_workflow(1)


class TestSampleDag:
    def test_matches_paper_figure4(self):
        wf = sample_dag_workflow()
        assert wf.num_jobs == 10
        assert wf.num_edges == 15
        assert wf.data("n4", "n8") == 27.0
        costs = sample_dag_cost_model(wf)
        assert costs.computation_cost("n9", "r4") == 13.0

    def test_pool_has_r4_joining_at_15(self):
        pool = sample_dag_pool()
        assert pool.available_at(0.0) == ["r1", "r2", "r3"]
        assert pool.resource("r4").available_from == R4_JOIN_TIME

    def test_case_bundle(self):
        case = sample_dag_case()
        assert case.num_jobs == 10
        assert case.params["generator"] == "sample-fig4"
