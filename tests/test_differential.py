"""Differential test harness (ISSUE-3 bit-identity, ISSUE-4 zero noise).

Three families of guarantees, checked on hypothesis-driven random cases:

* **Bit-identity** — a single tenant submitting a single workflow at time 0
  to the :class:`~repro.simulation.shared_grid.SharedGridExecutor` is the
  degenerate multi-tenant run, and must reproduce the existing
  single-workflow executor (:func:`~repro.core.adaptive.run_adaptive`)
  *exactly*: same final schedule, same makespan, same wasted work, same
  decision stream — under every registered scenario and every interleave
  policy.  This pins the multi-tenant subsystem to the paper-validated
  code path.

* **Invariants** — every scheduler's output passes the feasibility
  invariants of :mod:`repro.scheduling.validation` under random scenarios:
  no overlapping assignments on a resource, precedence respected including
  communication delays, and resources only used inside their availability
  windows.  For multi-tenant runs the cross-workflow exclusivity invariant
  is additionally re-checked by booking every tenant's final schedule onto
  one shared timeline per resource.

* **Zero noise** — every executor with the uncertainty engine's
  :class:`~repro.workflow.costs.ErrorModel` at magnitude 0 (or disabled)
  is bit-identical to the analytic path it generalises: same schedules,
  same makespans, same wasted work, same adaptive decision stream — under
  every registered scenario.  This pins the stochastic-truth machinery to
  the paper-validated accurate-estimation code path.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import run_adaptive, run_dynamic, run_static
from repro.core.multi_tenant import POLICIES
from repro.generators.random_dag import RandomDAGParameters, generate_random_case
from repro.scenarios import available_scenarios, make_scenario, materialize
from repro.scheduling.validation import (
    check_no_overlap,
    check_precedence,
    validate_schedule,
)
from repro.simulation.shared_grid import SharedGridExecutor
from repro.workflow.costs import available_error_models, make_error_model
from repro.workload.streams import TenantSpec, WorkflowArrival, WorkloadStream

#: scenarios whose dynamics are pool-membership only (no perf factors) —
#: the strict cross-tenant exclusivity check applies to these; after a
#: perf change independently repaired plans may transiently contend (see
#: repro.core.multi_tenant) so perf scenarios are exercised for
#: per-schedule invariants but not for joint-timeline exclusivity.
MEMBERSHIP_SCENARIOS = ("static", "paper", "departures", "churn", "join_burst", "flash_crowd")


def _case(v: int, seed: int):
    params = RandomDAGParameters(v=v, out_degree=0.2, ccr=1.0, beta=0.5, omega_dag=300.0)
    return generate_random_case(params, seed=seed)


def _single_arrival(case) -> WorkflowArrival:
    return WorkflowArrival(
        tenant="t1", index=0, time=0.0, kind="random", case=case, seq=0
    )


def _assert_bit_identical(case, scenario_name: str, initial: int, seed: int, policy: str):
    run_a = materialize(make_scenario(scenario_name), initial_size=initial, seed=seed)
    single = run_adaptive(
        case.workflow, case.costs, run_a.pool, perf_profile=run_a.profile
    )
    run_b = materialize(make_scenario(scenario_name), initial_size=initial, seed=seed)
    shared = SharedGridExecutor(
        [_single_arrival(case)],
        run_b.pool,
        perf_profile=run_b.profile,
        policy=policy,
    ).run()
    assert len(shared.outcomes) == 1
    outcome = shared.outcomes[0]
    assert outcome.schedule.to_dict() == single.final_schedule.to_dict()
    assert outcome.completed_at == single.makespan
    assert outcome.wasted_work == single.wasted_work
    assert outcome.killed_jobs == single.killed_jobs
    assert [
        (d.time, d.event, d.adopted, d.forced) for d in outcome.decisions
    ] == [(d.time, d.event, d.adopted, d.forced) for d in single.decisions]


class TestSingleTenantBitIdentity:
    """Degenerate multi-tenancy must equal the paper's single-workflow loop."""

    @pytest.mark.parametrize("scenario_name", available_scenarios())
    def test_every_registered_scenario(self, scenario_name):
        case = _case(v=24, seed=17)
        _assert_bit_identical(case, scenario_name, initial=6, seed=5, policy="fifo")

    @pytest.mark.parametrize("policy", POLICIES)
    def test_every_policy_degenerates(self, policy):
        case = _case(v=20, seed=3)
        _assert_bit_identical(case, "departures", initial=5, seed=9, policy=policy)

    @settings(max_examples=15, deadline=None)
    @given(
        v=st.integers(min_value=8, max_value=36),
        case_seed=st.integers(min_value=0, max_value=10**6),
        scenario_name=st.sampled_from(sorted(available_scenarios())),
        initial=st.integers(min_value=3, max_value=10),
        scenario_seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_random_cases(self, v, case_seed, scenario_name, initial, scenario_seed):
        case = _case(v=v, seed=case_seed)
        _assert_bit_identical(
            case, scenario_name, initial=initial, seed=scenario_seed, policy="fifo"
        )


class TestSchedulerInvariantsUnderScenarios:
    """Every strategy's output stays feasible under random dynamics."""

    @settings(max_examples=12, deadline=None)
    @given(
        v=st.integers(min_value=8, max_value=30),
        case_seed=st.integers(min_value=0, max_value=10**6),
        scenario_name=st.sampled_from(sorted(available_scenarios())),
        scenario_seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_adaptive_schedule_is_feasible(
        self, v, case_seed, scenario_name, scenario_seed
    ):
        case = _case(v=v, seed=case_seed)
        run = materialize(
            make_scenario(scenario_name), initial_size=6, seed=scenario_seed
        )
        result = run_adaptive(
            case.workflow, case.costs, run.pool, perf_profile=run.profile
        )
        # precedence + communication delay + no overlap + availability
        validate_schedule(
            case.workflow,
            case.costs,
            result.final_schedule,
            pool=run.pool,
        )

    @settings(max_examples=8, deadline=None)
    @given(
        v=st.integers(min_value=8, max_value=24),
        case_seed=st.integers(min_value=0, max_value=10**6),
        scenario_name=st.sampled_from(sorted(MEMBERSHIP_SCENARIOS)),
        scenario_seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_static_and_dynamic_traces_are_feasible(
        self, v, case_seed, scenario_name, scenario_seed
    ):
        case = _case(v=v, seed=case_seed)
        run = materialize(
            make_scenario(scenario_name), initial_size=6, seed=scenario_seed
        )
        for runner in (run_static, run_dynamic):
            result = runner(
                case.workflow, case.costs, run.pool, perf_profile=run.profile
            )
            schedule = (
                result.trace.to_schedule()
                if result.trace is not None
                else result.final_schedule
            )
            assert check_no_overlap(schedule) == []
            assert check_precedence(case.workflow, case.costs, schedule) == []

    @settings(max_examples=8, deadline=None)
    @given(
        tenants=st.integers(min_value=1, max_value=4),
        scenario_name=st.sampled_from(sorted(MEMBERSHIP_SCENARIOS)),
        seed=st.integers(min_value=0, max_value=10**6),
        policy=st.sampled_from(POLICIES),
    )
    def test_multi_tenant_schedules_share_without_overlap(
        self, tenants, scenario_name, seed, policy
    ):
        specs = [
            TenantSpec(
                name=f"t{i + 1}",
                arrival_rate=0.003,
                max_arrivals=2,
                v=12,
                parallelism=6,
                mix=(("random", 0.7), ("blast", 0.3)),
            )
            for i in range(tenants)
        ]
        stream = WorkloadStream(specs, seed=seed, horizon=4000.0)
        run = materialize(make_scenario(scenario_name), initial_size=6, seed=seed)
        result = SharedGridExecutor(
            stream.arrivals(), run.pool, perf_profile=run.profile, policy=policy
        ).run()
        # per-workflow feasibility: precedence and self-overlap
        arrivals = {arrival.key: arrival for arrival in stream.arrivals()}
        for outcome in result.outcomes:
            case = arrivals[outcome.key].case
            assert check_no_overlap(outcome.schedule) == []
            assert check_precedence(case.workflow, case.costs, outcome.schedule) == []
        # cross-tenant exclusivity: booking everything on one timeline per
        # resource raises if two tenants ever held the same slot
        result.shared_timelines()


def _decision_tuples(result):
    return [
        (d.time, d.event, d.adopted, d.forced, d.previous_makespan, d.candidate_makespan)
        for d in result.decisions
    ]


class TestRegistryBitIdentity:
    """Registry-built strategies must equal the direct constructors exactly.

    ``run_case(strategies=("heft", "aheft", "minmin"))`` resolves through
    the scheduling registry; the legacy capitalised names construct the
    schedulers directly.  Under every registered scenario the two paths
    must produce bit-identical makespans, reschedule counts and wasted
    work — the registry is wiring, never semantics.
    """

    PAIRS = (("heft", "HEFT"), ("aheft", "AHEFT"), ("minmin", "MinMin"))

    @pytest.mark.parametrize("scenario_name", available_scenarios())
    def test_registry_names_equal_legacy_runners(self, scenario_name):
        from repro.experiments.runner import ExperimentCase, run_case
        from repro.resources.dynamics import StaticResourceModel

        case = _case(v=20, seed=23)
        registry_names = tuple(pair[0] for pair in self.PAIRS)
        legacy_names = tuple(pair[1] for pair in self.PAIRS)
        experiment = ExperimentCase(
            case=case,
            resource_model=StaticResourceModel(size=6),
            scenario=make_scenario(scenario_name),
            scenario_seed=11,
        )
        via_registry = run_case(experiment, strategies=registry_names)
        via_legacy = run_case(experiment, strategies=legacy_names)
        for registry_name, legacy_name in self.PAIRS:
            assert via_registry.makespans[registry_name] == (
                via_legacy.makespans[legacy_name]
            )
            assert via_registry.rescheduling_counts[registry_name] == (
                via_legacy.rescheduling_counts[legacy_name]
            )
            assert via_registry.wasted_work[registry_name] == (
                via_legacy.wasted_work[legacy_name]
            )

    @pytest.mark.parametrize("scenario_name", sorted(MEMBERSHIP_SCENARIOS))
    def test_registry_scheduler_objects_match_direct_construction(self, scenario_name):
        from repro.scheduling import AHEFTScheduler, HEFTScheduler, make_scheduler

        case = _case(v=18, seed=5)
        run = materialize(make_scenario(scenario_name), initial_size=5, seed=3)
        resources = run.pool.available_at(0.0)
        for registry_name, direct in (
            ("heft", HEFTScheduler()),
            ("aheft", AHEFTScheduler()),
        ):
            a = make_scheduler(registry_name).schedule(
                case.workflow, case.costs, resources
            )
            b = direct.schedule(case.workflow, case.costs, resources)
            assert a.to_dict() == b.to_dict()


class TestNewStrategySanityBounds:
    """CPOP / lookahead HEFT must land near HEFT on the Table-2 comparison.

    Both are HEFT-family heuristics; across a batch of the paper's random
    cases their mean makespan must stay within a generous band of plain
    HEFT's (neither collapses nor explodes), and every schedule must beat
    nothing-scheduled lower bounds trivially via feasibility (checked in
    the invariant suite).  The band is deliberately loose — this is a
    sanity gate, not a performance claim.
    """

    STRATEGY_BOUNDS = {"cpop": (0.6, 1.8), "lookahead_heft": (0.7, 1.4)}

    def test_mean_makespan_within_band_of_heft(self):
        from repro.scheduling import make_scheduler

        resources = ["r1", "r2", "r3", "r4", "r5", "r6"]
        ratios: dict = {name: [] for name in self.STRATEGY_BOUNDS}
        for seed in range(8):
            case = _case(v=30, seed=100 + seed)
            heft = make_scheduler("heft").schedule(
                case.workflow, case.costs, resources
            )
            for name in self.STRATEGY_BOUNDS:
                other = make_scheduler(name).schedule(
                    case.workflow, case.costs, resources
                )
                ratios[name].append(other.makespan() / heft.makespan())
        for name, (low, high) in self.STRATEGY_BOUNDS.items():
            mean_ratio = sum(ratios[name]) / len(ratios[name])
            assert low <= mean_ratio <= high, (name, mean_ratio, ratios[name])

    def test_heft_dup_zero_noise_simulation_reproduces_the_plan(self):
        """The static executor runs duplicates as real work: under accurate
        estimates the simulated trace reproduces the plan bit for bit —
        duplicate slots occupied, consumers fed from the local copies."""
        from repro.core.adaptive import run_static
        from repro.resources.pool import ResourcePool
        from repro.resources.resource import Resource
        from repro.scheduling import make_scheduler

        found_dup_plan = False
        for seed in range(6):
            case = _case(v=24, seed=300 + seed)
            resources = ["r1", "r2", "r3", "r4"]
            pool = ResourcePool()
            for rid in resources:
                pool.add(Resource(rid))
            plan = make_scheduler("heft_dup").schedule(
                case.workflow, case.costs, resources
            )
            result = run_static(
                case.workflow, case.costs, pool, strategy="heft_dup", simulate=True
            )
            assert result.trace is not None
            executed = result.trace.to_schedule()
            assert executed.to_dict() == plan.to_dict()
            assert executed.duplicates_to_dict() == plan.duplicates_to_dict()
            assert result.makespan == plan.makespan()
            found_dup_plan = found_dup_plan or bool(plan.duplicates)
        assert found_dup_plan, "no seed produced duplicates; test is vacuous"

    def test_heft_dup_never_loses_to_heft_by_much(self):
        """Duplication is adopted only when it helps a job's EFT; schedule-
        level makespan must stay within a few percent of plain HEFT."""
        from repro.scheduling import make_scheduler

        resources = ["r1", "r2", "r3", "r4"]
        for seed in range(8):
            case = _case(v=24, seed=200 + seed)
            heft = make_scheduler("heft").schedule(
                case.workflow, case.costs, resources
            )
            dup = make_scheduler("heft_dup").schedule(
                case.workflow, case.costs, resources
            )
            assert dup.makespan() <= heft.makespan() * 1.10, seed


class TestZeroNoiseDifferential:
    """Magnitude-0 error models are bit-identical to the analytic path."""

    @pytest.mark.parametrize("scenario_name", available_scenarios())
    def test_adaptive_zero_noise_equals_analytic(self, scenario_name):
        case = _case(v=24, seed=17)
        run_a = materialize(make_scenario(scenario_name), initial_size=6, seed=5)
        legacy = run_adaptive(
            case.workflow, case.costs, run_a.pool, perf_profile=run_a.profile
        )
        run_b = materialize(make_scenario(scenario_name), initial_size=6, seed=5)
        null = run_adaptive(
            case.workflow, case.costs, run_b.pool, perf_profile=run_b.profile,
            error_model=make_error_model("gaussian", 0.0),
        )
        assert null.final_schedule.to_dict() == legacy.final_schedule.to_dict()
        assert null.makespan == legacy.makespan
        assert null.wasted_work == legacy.wasted_work
        assert null.killed_jobs == legacy.killed_jobs
        assert _decision_tuples(null) == _decision_tuples(legacy)
        # the replayed trace reproduces the final plan's booked times exactly
        assert null.trace is not None
        assert null.trace.to_schedule().to_dict() == {
            job: assignment
            for job, assignment in legacy.final_schedule.to_dict().items()
        }

    @settings(max_examples=10, deadline=None)
    @given(
        v=st.integers(min_value=8, max_value=30),
        case_seed=st.integers(min_value=0, max_value=10**6),
        family=st.sampled_from(sorted(available_error_models())),
        scenario_name=st.sampled_from(sorted(available_scenarios())),
        scenario_seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_adaptive_zero_noise_random_cases(
        self, v, case_seed, family, scenario_name, scenario_seed
    ):
        case = _case(v=v, seed=case_seed)
        run_a = materialize(
            make_scenario(scenario_name), initial_size=6, seed=scenario_seed
        )
        legacy = run_adaptive(
            case.workflow, case.costs, run_a.pool, perf_profile=run_a.profile
        )
        run_b = materialize(
            make_scenario(scenario_name), initial_size=6, seed=scenario_seed
        )
        null = run_adaptive(
            case.workflow, case.costs, run_b.pool, perf_profile=run_b.profile,
            error_model=make_error_model(family, 0.0),
        )
        assert null.final_schedule.to_dict() == legacy.final_schedule.to_dict()
        assert null.makespan == legacy.makespan
        assert null.wasted_work == legacy.wasted_work
        assert _decision_tuples(null) == _decision_tuples(legacy)

    @pytest.mark.parametrize("scenario_name", sorted(MEMBERSHIP_SCENARIOS))
    def test_static_and_dynamic_zero_noise_equal_plain_runs(self, scenario_name):
        case = _case(v=20, seed=3)
        null_model = make_error_model("lognormal", 0.0)
        for runner in (run_static, run_dynamic):
            run_a = materialize(make_scenario(scenario_name), initial_size=6, seed=9)
            plain = runner(
                case.workflow, case.costs, run_a.pool, perf_profile=run_a.profile,
            )
            run_b = materialize(make_scenario(scenario_name), initial_size=6, seed=9)
            null = runner(
                case.workflow, case.costs, run_b.pool, perf_profile=run_b.profile,
                error_model=null_model,
            )
            assert null.makespan == plain.makespan
            assert null.wasted_work == plain.wasted_work
            assert null.killed_jobs == plain.killed_jobs
            if plain.trace is not None:
                assert null.trace.to_schedule().to_dict() == (
                    plain.trace.to_schedule().to_dict()
                )

    def test_static_executor_zero_noise_trace_matches_plain_simulation(self):
        """Even without dynamics the simulated paths coincide bit for bit."""
        case = _case(v=20, seed=3)
        run_a = materialize(make_scenario("static"), initial_size=6, seed=9)
        plain = run_static(
            case.workflow, case.costs, run_a.pool, perf_profile=run_a.profile,
            simulate=True,
        )
        run_b = materialize(make_scenario("static"), initial_size=6, seed=9)
        null = run_static(
            case.workflow, case.costs, run_b.pool, perf_profile=run_b.profile,
            error_model=make_error_model("uniform", 0.0),
        )
        assert null.trace.to_schedule().to_dict() == plain.trace.to_schedule().to_dict()

    @pytest.mark.parametrize("scenario_name", sorted(MEMBERSHIP_SCENARIOS))
    def test_shared_grid_zero_noise_replay_is_identity(self, scenario_name):
        specs = [
            TenantSpec(
                name=f"t{i + 1}",
                arrival_rate=0.003,
                max_arrivals=2,
                v=12,
                parallelism=6,
                mix=(("random", 0.7), ("blast", 0.3)),
            )
            for i in range(3)
        ]
        stream = WorkloadStream(specs, seed=13, horizon=4000.0)
        run_a = materialize(make_scenario(scenario_name), initial_size=6, seed=7)
        plain = SharedGridExecutor(
            stream.arrivals(), run_a.pool, perf_profile=run_a.profile
        ).run()
        run_b = materialize(make_scenario(scenario_name), initial_size=6, seed=7)
        null = SharedGridExecutor(
            stream.arrivals(), run_b.pool, perf_profile=run_b.profile,
            error_model=make_error_model("gaussian", 0.0),
        ).run()
        assert len(plain.outcomes) == len(null.outcomes)
        for a, b in zip(null.outcomes, plain.outcomes):
            assert a.key == b.key
            assert a.completed_at == b.completed_at
            assert a.schedule.to_dict() == b.schedule.to_dict()
            # the replayed actuals reproduce the booked times exactly
            assert a.actual_schedule is not None
            assert a.actual_schedule.to_dict() == b.schedule.to_dict()
            assert a.wasted_work == b.wasted_work
            assert _decision_tuples(a) == _decision_tuples(b)
