"""Differential test harness (ISSUE-3 bit-identity, ISSUE-4 zero noise).

Three families of guarantees, checked on hypothesis-driven random cases:

* **Bit-identity** — a single tenant submitting a single workflow at time 0
  to the :class:`~repro.simulation.shared_grid.SharedGridExecutor` is the
  degenerate multi-tenant run, and must reproduce the existing
  single-workflow executor (:func:`~repro.core.adaptive.run_adaptive`)
  *exactly*: same final schedule, same makespan, same wasted work, same
  decision stream — under every registered scenario and every interleave
  policy.  This pins the multi-tenant subsystem to the paper-validated
  code path.

* **Invariants** — every scheduler's output passes the feasibility
  invariants of :mod:`repro.scheduling.validation` under random scenarios:
  no overlapping assignments on a resource, precedence respected including
  communication delays, and resources only used inside their availability
  windows.  For multi-tenant runs the cross-workflow exclusivity invariant
  is additionally re-checked by booking every tenant's final schedule onto
  one shared timeline per resource.

* **Zero noise** — every executor with the uncertainty engine's
  :class:`~repro.workflow.costs.ErrorModel` at magnitude 0 (or disabled)
  is bit-identical to the analytic path it generalises: same schedules,
  same makespans, same wasted work, same adaptive decision stream — under
  every registered scenario.  This pins the stochastic-truth machinery to
  the paper-validated accurate-estimation code path.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import run_adaptive, run_dynamic, run_static
from repro.core.multi_tenant import POLICIES
from repro.generators.random_dag import RandomDAGParameters, generate_random_case
from repro.scenarios import available_scenarios, make_scenario, materialize
from repro.scheduling.validation import (
    check_no_overlap,
    check_precedence,
    validate_schedule,
)
from repro.simulation.shared_grid import SharedGridExecutor
from repro.workflow.costs import available_error_models, make_error_model
from repro.workload.streams import TenantSpec, WorkflowArrival, WorkloadStream

#: scenarios whose dynamics are pool-membership only (no perf factors) —
#: the strict cross-tenant exclusivity check applies to these; after a
#: perf change independently repaired plans may transiently contend (see
#: repro.core.multi_tenant) so perf scenarios are exercised for
#: per-schedule invariants but not for joint-timeline exclusivity.
MEMBERSHIP_SCENARIOS = ("static", "paper", "departures", "churn", "join_burst", "flash_crowd")


def _case(v: int, seed: int):
    params = RandomDAGParameters(v=v, out_degree=0.2, ccr=1.0, beta=0.5, omega_dag=300.0)
    return generate_random_case(params, seed=seed)


def _single_arrival(case) -> WorkflowArrival:
    return WorkflowArrival(
        tenant="t1", index=0, time=0.0, kind="random", case=case, seq=0
    )


def _assert_bit_identical(case, scenario_name: str, initial: int, seed: int, policy: str):
    run_a = materialize(make_scenario(scenario_name), initial_size=initial, seed=seed)
    single = run_adaptive(
        case.workflow, case.costs, run_a.pool, perf_profile=run_a.profile
    )
    run_b = materialize(make_scenario(scenario_name), initial_size=initial, seed=seed)
    shared = SharedGridExecutor(
        [_single_arrival(case)],
        run_b.pool,
        perf_profile=run_b.profile,
        policy=policy,
    ).run()
    assert len(shared.outcomes) == 1
    outcome = shared.outcomes[0]
    assert outcome.schedule.to_dict() == single.final_schedule.to_dict()
    assert outcome.completed_at == single.makespan
    assert outcome.wasted_work == single.wasted_work
    assert outcome.killed_jobs == single.killed_jobs
    assert [
        (d.time, d.event, d.adopted, d.forced) for d in outcome.decisions
    ] == [(d.time, d.event, d.adopted, d.forced) for d in single.decisions]


class TestSingleTenantBitIdentity:
    """Degenerate multi-tenancy must equal the paper's single-workflow loop."""

    @pytest.mark.parametrize("scenario_name", available_scenarios())
    def test_every_registered_scenario(self, scenario_name):
        case = _case(v=24, seed=17)
        _assert_bit_identical(case, scenario_name, initial=6, seed=5, policy="fifo")

    @pytest.mark.parametrize("policy", POLICIES)
    def test_every_policy_degenerates(self, policy):
        case = _case(v=20, seed=3)
        _assert_bit_identical(case, "departures", initial=5, seed=9, policy=policy)

    @settings(max_examples=15, deadline=None)
    @given(
        v=st.integers(min_value=8, max_value=36),
        case_seed=st.integers(min_value=0, max_value=10**6),
        scenario_name=st.sampled_from(sorted(available_scenarios())),
        initial=st.integers(min_value=3, max_value=10),
        scenario_seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_random_cases(self, v, case_seed, scenario_name, initial, scenario_seed):
        case = _case(v=v, seed=case_seed)
        _assert_bit_identical(
            case, scenario_name, initial=initial, seed=scenario_seed, policy="fifo"
        )


class TestSchedulerInvariantsUnderScenarios:
    """Every strategy's output stays feasible under random dynamics."""

    @settings(max_examples=12, deadline=None)
    @given(
        v=st.integers(min_value=8, max_value=30),
        case_seed=st.integers(min_value=0, max_value=10**6),
        scenario_name=st.sampled_from(sorted(available_scenarios())),
        scenario_seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_adaptive_schedule_is_feasible(
        self, v, case_seed, scenario_name, scenario_seed
    ):
        case = _case(v=v, seed=case_seed)
        run = materialize(
            make_scenario(scenario_name), initial_size=6, seed=scenario_seed
        )
        result = run_adaptive(
            case.workflow, case.costs, run.pool, perf_profile=run.profile
        )
        # precedence + communication delay + no overlap + availability
        validate_schedule(
            case.workflow,
            case.costs,
            result.final_schedule,
            pool=run.pool,
        )

    @settings(max_examples=8, deadline=None)
    @given(
        v=st.integers(min_value=8, max_value=24),
        case_seed=st.integers(min_value=0, max_value=10**6),
        scenario_name=st.sampled_from(sorted(MEMBERSHIP_SCENARIOS)),
        scenario_seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_static_and_dynamic_traces_are_feasible(
        self, v, case_seed, scenario_name, scenario_seed
    ):
        case = _case(v=v, seed=case_seed)
        run = materialize(
            make_scenario(scenario_name), initial_size=6, seed=scenario_seed
        )
        for runner in (run_static, run_dynamic):
            result = runner(
                case.workflow, case.costs, run.pool, perf_profile=run.profile
            )
            schedule = (
                result.trace.to_schedule()
                if result.trace is not None
                else result.final_schedule
            )
            assert check_no_overlap(schedule) == []
            assert check_precedence(case.workflow, case.costs, schedule) == []

    @settings(max_examples=8, deadline=None)
    @given(
        tenants=st.integers(min_value=1, max_value=4),
        scenario_name=st.sampled_from(sorted(MEMBERSHIP_SCENARIOS)),
        seed=st.integers(min_value=0, max_value=10**6),
        policy=st.sampled_from(POLICIES),
    )
    def test_multi_tenant_schedules_share_without_overlap(
        self, tenants, scenario_name, seed, policy
    ):
        specs = [
            TenantSpec(
                name=f"t{i + 1}",
                arrival_rate=0.003,
                max_arrivals=2,
                v=12,
                parallelism=6,
                mix=(("random", 0.7), ("blast", 0.3)),
            )
            for i in range(tenants)
        ]
        stream = WorkloadStream(specs, seed=seed, horizon=4000.0)
        run = materialize(make_scenario(scenario_name), initial_size=6, seed=seed)
        result = SharedGridExecutor(
            stream.arrivals(), run.pool, perf_profile=run.profile, policy=policy
        ).run()
        # per-workflow feasibility: precedence and self-overlap
        arrivals = {arrival.key: arrival for arrival in stream.arrivals()}
        for outcome in result.outcomes:
            case = arrivals[outcome.key].case
            assert check_no_overlap(outcome.schedule) == []
            assert check_precedence(case.workflow, case.costs, outcome.schedule) == []
        # cross-tenant exclusivity: booking everything on one timeline per
        # resource raises if two tenants ever held the same slot
        result.shared_timelines()


def _decision_tuples(result):
    return [
        (d.time, d.event, d.adopted, d.forced, d.previous_makespan, d.candidate_makespan)
        for d in result.decisions
    ]


class TestZeroNoiseDifferential:
    """Magnitude-0 error models are bit-identical to the analytic path."""

    @pytest.mark.parametrize("scenario_name", available_scenarios())
    def test_adaptive_zero_noise_equals_analytic(self, scenario_name):
        case = _case(v=24, seed=17)
        run_a = materialize(make_scenario(scenario_name), initial_size=6, seed=5)
        legacy = run_adaptive(
            case.workflow, case.costs, run_a.pool, perf_profile=run_a.profile
        )
        run_b = materialize(make_scenario(scenario_name), initial_size=6, seed=5)
        null = run_adaptive(
            case.workflow, case.costs, run_b.pool, perf_profile=run_b.profile,
            error_model=make_error_model("gaussian", 0.0),
        )
        assert null.final_schedule.to_dict() == legacy.final_schedule.to_dict()
        assert null.makespan == legacy.makespan
        assert null.wasted_work == legacy.wasted_work
        assert null.killed_jobs == legacy.killed_jobs
        assert _decision_tuples(null) == _decision_tuples(legacy)
        # the replayed trace reproduces the final plan's booked times exactly
        assert null.trace is not None
        assert null.trace.to_schedule().to_dict() == {
            job: assignment
            for job, assignment in legacy.final_schedule.to_dict().items()
        }

    @settings(max_examples=10, deadline=None)
    @given(
        v=st.integers(min_value=8, max_value=30),
        case_seed=st.integers(min_value=0, max_value=10**6),
        family=st.sampled_from(sorted(available_error_models())),
        scenario_name=st.sampled_from(sorted(available_scenarios())),
        scenario_seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_adaptive_zero_noise_random_cases(
        self, v, case_seed, family, scenario_name, scenario_seed
    ):
        case = _case(v=v, seed=case_seed)
        run_a = materialize(
            make_scenario(scenario_name), initial_size=6, seed=scenario_seed
        )
        legacy = run_adaptive(
            case.workflow, case.costs, run_a.pool, perf_profile=run_a.profile
        )
        run_b = materialize(
            make_scenario(scenario_name), initial_size=6, seed=scenario_seed
        )
        null = run_adaptive(
            case.workflow, case.costs, run_b.pool, perf_profile=run_b.profile,
            error_model=make_error_model(family, 0.0),
        )
        assert null.final_schedule.to_dict() == legacy.final_schedule.to_dict()
        assert null.makespan == legacy.makespan
        assert null.wasted_work == legacy.wasted_work
        assert _decision_tuples(null) == _decision_tuples(legacy)

    @pytest.mark.parametrize("scenario_name", sorted(MEMBERSHIP_SCENARIOS))
    def test_static_and_dynamic_zero_noise_equal_plain_runs(self, scenario_name):
        case = _case(v=20, seed=3)
        null_model = make_error_model("lognormal", 0.0)
        for runner in (run_static, run_dynamic):
            run_a = materialize(make_scenario(scenario_name), initial_size=6, seed=9)
            plain = runner(
                case.workflow, case.costs, run_a.pool, perf_profile=run_a.profile,
            )
            run_b = materialize(make_scenario(scenario_name), initial_size=6, seed=9)
            null = runner(
                case.workflow, case.costs, run_b.pool, perf_profile=run_b.profile,
                error_model=null_model,
            )
            assert null.makespan == plain.makespan
            assert null.wasted_work == plain.wasted_work
            assert null.killed_jobs == plain.killed_jobs
            if plain.trace is not None:
                assert null.trace.to_schedule().to_dict() == (
                    plain.trace.to_schedule().to_dict()
                )

    def test_static_executor_zero_noise_trace_matches_plain_simulation(self):
        """Even without dynamics the simulated paths coincide bit for bit."""
        case = _case(v=20, seed=3)
        run_a = materialize(make_scenario("static"), initial_size=6, seed=9)
        plain = run_static(
            case.workflow, case.costs, run_a.pool, perf_profile=run_a.profile,
            simulate=True,
        )
        run_b = materialize(make_scenario("static"), initial_size=6, seed=9)
        null = run_static(
            case.workflow, case.costs, run_b.pool, perf_profile=run_b.profile,
            error_model=make_error_model("uniform", 0.0),
        )
        assert null.trace.to_schedule().to_dict() == plain.trace.to_schedule().to_dict()

    @pytest.mark.parametrize("scenario_name", sorted(MEMBERSHIP_SCENARIOS))
    def test_shared_grid_zero_noise_replay_is_identity(self, scenario_name):
        specs = [
            TenantSpec(
                name=f"t{i + 1}",
                arrival_rate=0.003,
                max_arrivals=2,
                v=12,
                parallelism=6,
                mix=(("random", 0.7), ("blast", 0.3)),
            )
            for i in range(3)
        ]
        stream = WorkloadStream(specs, seed=13, horizon=4000.0)
        run_a = materialize(make_scenario(scenario_name), initial_size=6, seed=7)
        plain = SharedGridExecutor(
            stream.arrivals(), run_a.pool, perf_profile=run_a.profile
        ).run()
        run_b = materialize(make_scenario(scenario_name), initial_size=6, seed=7)
        null = SharedGridExecutor(
            stream.arrivals(), run_b.pool, perf_profile=run_b.profile,
            error_model=make_error_model("gaussian", 0.0),
        ).run()
        assert len(plain.outcomes) == len(null.outcomes)
        for a, b in zip(null.outcomes, plain.outcomes):
            assert a.key == b.key
            assert a.completed_at == b.completed_at
            assert a.schedule.to_dict() == b.schedule.to_dict()
            # the replayed actuals reproduce the booked times exactly
            assert a.actual_schedule is not None
            assert a.actual_schedule.to_dict() == b.schedule.to_dict()
            assert a.wasted_work == b.wasted_work
            assert _decision_tuples(a) == _decision_tuples(b)
