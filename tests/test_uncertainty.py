"""The uncertainty engine (ISSUE-4).

Four guarantee families:

* **Deterministic sampling** — an error model's truth factors are a pure
  function of ``(seed, replication, scope, job, resource)``: independent of
  query order, stable across pickling (process boundaries), distinct
  between replications, and exactly 1.0 at magnitude zero.
* **Feasibility under noise** — executed traces of every strategy under
  random error models still satisfy the scheduling invariants: no slot
  overlap, precedence including communication delay, and availability
  windows.
* **The Fig. 1 feedback loop** — observed actuals accumulate in the
  Performance History Repository, the Predictor's re-estimated model moves
  towards the observed truths (both blend semantics), and the adaptive
  accept rule really plans with the re-estimated model.
* **Determinism under parallelism** — ``run_replicated`` and
  ``sweep_uncertainty`` produce byte-identical results for ``workers=1``
  and ``workers=N``.
"""

from __future__ import annotations

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import run_adaptive, run_dynamic, run_static
from repro.core.history import PerformanceHistoryRepository
from repro.core.predictor import (
    HistoryAdjustedCostModel,
    Predictor,
    RatioAdjustedCostModel,
)
from repro.experiments.config import RandomExperimentConfig
from repro.experiments.uncertainty import run_replicated, sweep_uncertainty
from repro.generators.random_dag import RandomDAGParameters, generate_random_case
from repro.scenarios import make_scenario, materialize
from repro.scheduling.validation import (
    check_no_overlap,
    check_precedence,
    validate_schedule,
)
from repro.workflow.costs import (
    ERROR_MODELS,
    PerturbedCostModel,
    available_error_models,
    error_model_summary,
    make_error_model,
)

FAMILIES = sorted(ERROR_MODELS)


def _case(v: int, seed: int):
    params = RandomDAGParameters(v=v, out_degree=0.2, ccr=1.0, beta=0.5, omega_dag=300.0)
    return generate_random_case(params, seed=seed)


# ----------------------------------------------------------------------
# deterministic sampling
# ----------------------------------------------------------------------
class TestErrorModelSampling:
    @settings(max_examples=25, deadline=None)
    @given(
        family=st.sampled_from(FAMILIES),
        magnitude=st.floats(min_value=0.01, max_value=0.8),
        seed=st.integers(min_value=0, max_value=10**6),
        replication=st.integers(min_value=0, max_value=50),
    )
    def test_factors_are_pure_functions(self, family, magnitude, seed, replication):
        """Same key, same factor — regardless of query order or instance."""
        model = make_error_model(family, magnitude, seed=seed).for_replication(
            replication
        )
        pairs = [(f"j{i}", f"r{j}") for i in range(4) for j in range(3)]
        forward = {pair: model.factor(*pair) for pair in pairs}
        # a fresh instance queried in reverse order answers identically
        twin = make_error_model(family, magnitude, seed=seed).for_replication(
            replication
        )
        backward = {pair: twin.factor(*pair) for pair in reversed(pairs)}
        assert forward == backward
        # factors survive the process boundary (the parallel runner pickles)
        clone = pickle.loads(pickle.dumps(model))
        assert {pair: clone.factor(*pair) for pair in pairs} == forward
        for factor in forward.values():
            assert factor >= model.floor

    @settings(max_examples=15, deadline=None)
    @given(
        family=st.sampled_from(FAMILIES),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_replications_and_scopes_draw_independently(self, family, seed):
        magnitude = 0.5
        model = make_error_model(family, magnitude, seed=seed)
        a = [model.for_replication(0).factor(f"j{i}", "r1") for i in range(12)]
        b = [model.for_replication(1).factor(f"j{i}", "r1") for i in range(12)]
        assert a != b
        c = [model.scoped("t1/0").factor(f"j{i}", "r1") for i in range(12)]
        assert a != c

    @pytest.mark.parametrize("family", FAMILIES)
    def test_magnitude_zero_is_null(self, family):
        model = make_error_model(family, 0.0, seed=3)
        assert model.is_null
        assert model.factor("j1", "r1") == 1.0
        assert model.actual_duration(123.456, "j1", "r1") == 123.456

    def test_resource_bias_is_systematic(self):
        model = make_error_model("resource_bias", 0.4, seed=7)
        bias = model.resource_bias("r2")
        for i in range(8):
            assert model.factor(f"j{i}", "r2") == bias

    def test_registry_rejects_unknown_names(self):
        with pytest.raises(KeyError):
            make_error_model("nope")
        with pytest.raises(KeyError):
            error_model_summary("nope")
        for name in available_error_models():
            assert error_model_summary(name)

    def test_perturbed_model_perturbs_computation_only(self):
        case = _case(v=12, seed=4)
        noisy = PerturbedCostModel(case.costs, make_error_model("gaussian", 0.5, seed=1))
        exact = PerturbedCostModel(case.costs, make_error_model("gaussian", 0.0))
        jobs = list(case.workflow.jobs)
        assert any(
            noisy.computation_cost(j, "r1") != case.costs.computation_cost(j, "r1")
            for j in jobs
        )
        for j in jobs:
            # zero noise: bitwise identical to the estimates
            assert exact.computation_cost(j, "r1") == case.costs.computation_cost(j, "r1")
        src, dst, _ = next(iter(case.workflow.edges()))
        assert noisy.communication_cost(src, dst, "r1", "r2") == (
            case.costs.communication_cost(src, dst, "r1", "r2")
        )
        assert noisy.average_communication_cost(src, dst) == (
            case.costs.average_communication_cost(src, dst)
        )
        assert noisy.has_uniform_communication == case.costs.has_uniform_communication


# ----------------------------------------------------------------------
# feasibility invariants under noise
# ----------------------------------------------------------------------
class TestExecutionFeasibilityUnderNoise:
    @settings(max_examples=12, deadline=None)
    @given(
        v=st.integers(min_value=8, max_value=28),
        case_seed=st.integers(min_value=0, max_value=10**6),
        family=st.sampled_from(FAMILIES),
        magnitude=st.floats(min_value=0.05, max_value=0.6),
        scenario_name=st.sampled_from(
            ["static", "paper", "departures", "churn", "join_burst"]
        ),
        scenario_seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_adaptive_actual_trace_is_feasible(
        self, v, case_seed, family, magnitude, scenario_name, scenario_seed
    ):
        case = _case(v=v, seed=case_seed)
        run = materialize(
            make_scenario(scenario_name), initial_size=6, seed=scenario_seed
        )
        model = make_error_model(family, magnitude, seed=case_seed)
        result = run_adaptive(
            case.workflow, case.costs, run.pool, perf_profile=run.profile,
            error_model=model,
        )
        assert result.trace is not None
        actual = result.trace.to_schedule()
        # precedence + communication delay + no overlap + availability
        validate_schedule(case.workflow, case.costs, actual, pool=run.pool)
        # the achieved makespan is the trace's, never the stale plan's
        assert result.makespan == result.trace.makespan()

    @settings(max_examples=10, deadline=None)
    @given(
        v=st.integers(min_value=8, max_value=24),
        case_seed=st.integers(min_value=0, max_value=10**6),
        family=st.sampled_from(FAMILIES),
        magnitude=st.floats(min_value=0.05, max_value=0.6),
        scenario_seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_static_and_dynamic_traces_are_feasible(
        self, v, case_seed, family, magnitude, scenario_seed
    ):
        case = _case(v=v, seed=case_seed)
        run = materialize(make_scenario("departures"), initial_size=6, seed=scenario_seed)
        model = make_error_model(family, magnitude, seed=case_seed)
        for runner in (run_static, run_dynamic):
            result = runner(
                case.workflow, case.costs, run.pool, perf_profile=run.profile,
                error_model=model,
            )
            schedule = result.trace.to_schedule()
            assert check_no_overlap(schedule) == []
            assert check_precedence(case.workflow, case.costs, schedule) == []

    def test_noise_triggers_deviation_decisions(self):
        case = _case(v=24, seed=9)
        run = materialize(make_scenario("static"), initial_size=6, seed=0)
        result = run_adaptive(
            case.workflow, case.costs, run.pool, perf_profile=run.profile,
            error_model=make_error_model("gaussian", 0.5, seed=2),
        )
        assert any(d.event == "deviation" for d in result.decisions)
        # with the trigger disabled the loop only reacts to grid events,
        # of which the static scenario has none
        quiet = run_adaptive(
            case.workflow, case.costs, run.pool, perf_profile=run.profile,
            error_model=make_error_model("gaussian", 0.5, seed=2),
            replan_on_deviation=None,
        )
        assert quiet.decisions == []


# ----------------------------------------------------------------------
# the Fig. 1 feedback loop
# ----------------------------------------------------------------------
class TestPredictorFeedbackLoop:
    def test_observations_accumulate_and_normalise(self):
        case = _case(v=20, seed=5)
        run = materialize(make_scenario("paper"), initial_size=5, seed=1)
        history = PerformanceHistoryRepository()
        result = run_adaptive(
            case.workflow, case.costs, run.pool, perf_profile=run.profile,
            error_model=make_error_model("resource_bias", 0.4, seed=6),
            history=history,
        )
        assert len(history) == case.workflow.num_jobs
        truth = PerturbedCostModel(
            case.costs, make_error_model("resource_bias", 0.4, seed=6)
        )
        for record in history.records:
            # each observation is the sampled ground-truth duration of the
            # job on the resource it actually executed on
            expected = truth.computation_cost(record.job_id, record.resource_id)
            assert record.duration == pytest.approx(expected, rel=1e-9)
        assert result.trace is not None

    def test_ratio_model_recovers_resource_bias(self):
        case = _case(v=20, seed=5)
        error = make_error_model("resource_bias", 0.5, seed=8)
        truth = PerturbedCostModel(case.costs, error)
        history = PerformanceHistoryRepository()
        for job in list(case.workflow.jobs)[:10]:
            history.record_execution(
                case.workflow.job(job).operation,
                "r1",
                truth.computation_cost(job, "r1"),
                job_id=job,
            )
        model = RatioAdjustedCostModel(case.costs, history, prior_strength=0.0)
        bias = error.resource_bias("r1")
        assert model.resource_ratio("r1") == pytest.approx(bias, rel=1e-9)
        for job in case.workflow.jobs:
            assert model.computation_cost(job, "r1") == pytest.approx(
                truth.computation_cost(job, "r1"), rel=1e-9
            )
        # unobserved resources keep the prior
        for job in case.workflow.jobs:
            assert model.computation_cost(job, "r2") == (
                case.costs.computation_cost(job, "r2")
            )

    def test_ratio_shrinkage_discounts_sparse_evidence(self):
        case = _case(v=12, seed=2)
        history = PerformanceHistoryRepository()
        job = next(iter(case.workflow.jobs))
        prior = case.costs.computation_cost(job, "r1")
        history.record_execution(
            case.workflow.job(job).operation, "r1", 3.0 * prior, job_id=job
        )
        eager = RatioAdjustedCostModel(case.costs, history, prior_strength=0.0)
        cautious = RatioAdjustedCostModel(case.costs, history, prior_strength=2.0)
        assert eager.resource_ratio("r1") == pytest.approx(3.0)
        assert cautious.resource_ratio("r1") == pytest.approx((3.0 + 2.0) / 3.0)

    def test_blend_interpolates_between_prior_and_observation(self):
        case = _case(v=12, seed=3)
        job = next(iter(case.workflow.jobs))
        operation = case.workflow.job(job).operation
        prior = case.costs.computation_cost(job, "r1")
        observed = prior * 1.8
        history = PerformanceHistoryRepository()
        history.record_execution(operation, "r1", observed, job_id=job)
        for blend in (0.0, 0.25, 0.5, 1.0):
            absolute = HistoryAdjustedCostModel(case.costs, history, blend=blend)
            assert absolute.computation_cost(job, "r1") == pytest.approx(
                blend * observed + (1 - blend) * prior
            )
            ratio = RatioAdjustedCostModel(
                case.costs, history, blend=blend, prior_strength=0.0
            )
            assert ratio.computation_cost(job, "r1") == pytest.approx(
                prior * (blend * 1.8 + (1 - blend))
            )

    def test_history_shared_across_workflows_stays_well_priced(self):
        """Ratio learning divides each observation by the estimate stored at
        observation time, so foreign workflows with colliding job ids
        cannot skew the correction factor."""
        error = make_error_model("resource_bias", 0.5, seed=11)
        config_a = RandomExperimentConfig(v=14, resources=5, seed=0, scenario="static")
        config_b = RandomExperimentConfig(v=14, resources=5, seed=99, scenario="static")
        case_a = config_a.to_experiment_case().case
        case_b = config_b.to_experiment_case().case
        # both generated DAGs reuse the same job identifiers
        assert set(case_a.workflow.jobs) == set(case_b.workflow.jobs)
        history = PerformanceHistoryRepository()
        pool_a = config_a.to_experiment_case().build_scenario_run().pool
        run_static(
            case_a.workflow, case_a.costs, pool_a,
            error_model=error, history=history,
        )
        # the supplied history alone forces the simulation (and recording)
        assert len(history) == case_a.workflow.num_jobs
        model = RatioAdjustedCostModel(case_b.costs, history, prior_strength=0.0)
        bias = error.resource_bias("r1")
        # workflow B's re-estimation on r1 recovers A's observed bias even
        # though B prices the colliding job ids completely differently
        assert model.resource_ratio("r1") == pytest.approx(bias, rel=1e-9)

    def test_executor_monitor_normalises_perf_factors(self):
        """Executor observations divide out known slowdown factors, so a
        shared history never double-counts a degradation the profile
        already reports."""
        case = _case(v=16, seed=6)
        run = materialize(
            make_scenario("degradation"), initial_size=5, seed=3
        )
        history = PerformanceHistoryRepository()
        run_static(
            case.workflow, case.costs, run.pool, perf_profile=run.profile,
            error_model=make_error_model("gaussian", 0.0), history=history,
        )
        truth_free = {
            (r.job_id, r.resource_id): r.duration for r in history.records
        }
        for (job, rid), duration in truth_free.items():
            # zero noise + normalisation: the observation equals the estimate
            assert duration == pytest.approx(
                case.costs.computation_cost(job, rid), rel=1e-9
            )

    def test_predictor_mode_selection(self):
        case = _case(v=10, seed=1)
        history = PerformanceHistoryRepository()
        job = next(iter(case.workflow.jobs))
        history.record_execution(case.workflow.job(job).operation, "r1", 5.0, job_id=job)
        assert isinstance(
            Predictor(history, mode="ratio").estimate(case.costs),
            RatioAdjustedCostModel,
        )
        assert isinstance(
            Predictor(history, mode="absolute").estimate(case.costs),
            HistoryAdjustedCostModel,
        )
        # empty history: the prior passes through untouched
        assert Predictor(PerformanceHistoryRepository()).estimate(case.costs) is case.costs
        with pytest.raises(ValueError):
            Predictor(history, mode="nope")

    def test_accept_rule_plans_with_reestimated_model(self):
        """After observations accumulate, reschedule sees the ratio model."""
        from repro.scheduling.aheft import AHEFTScheduler

        seen = []

        class SpyScheduler(AHEFTScheduler):
            def reschedule(self, workflow, costs, resources, **kwargs):
                seen.append(costs)
                return super().reschedule(workflow, costs, resources, **kwargs)

        case = _case(v=20, seed=7)
        run = materialize(make_scenario("paper"), initial_size=5, seed=2)
        history = PerformanceHistoryRepository()
        run_adaptive(
            case.workflow, case.costs, run.pool, perf_profile=run.profile,
            error_model=make_error_model("resource_bias", 0.5, seed=4),
            history=history, scheduler=SpyScheduler(),
        )
        assert seen, "no rescheduling decision was evaluated"
        reestimated = [
            model for model in seen if isinstance(model, RatioAdjustedCostModel)
        ]
        assert reestimated, "accept rule never saw the re-estimated model"
        # the re-estimated model really answers with history-corrected costs
        model = reestimated[-1]
        resource = model.history.records[0].resource_id
        ratio = model.resource_ratio(resource)
        job = next(iter(case.workflow.jobs))
        assert model.computation_cost(job, resource) == pytest.approx(
            case.costs.computation_cost(job, resource) * ratio
        )


# ----------------------------------------------------------------------
# determinism under parallelism
# ----------------------------------------------------------------------
def _point_payload(points):
    return json.dumps([point.as_dict() for point in points], sort_keys=True)


class TestReplicationDeterminism:
    def test_run_replicated_workers_match(self):
        config = RandomExperimentConfig(v=14, resources=5, seed=0, scenario="paper")
        experiment = config.to_experiment_case()
        model = make_error_model("gaussian", 0.3, seed=0)
        serial = run_replicated(
            experiment, error_model=model, replications=4, workers=1
        )
        parallel = run_replicated(
            experiment, error_model=model, replications=4, workers=2
        )
        assert serial.makespans == parallel.makespans
        assert serial.improvements == parallel.improvements
        assert serial.stats == parallel.stats

    def test_sweep_uncertainty_workers_match(self):
        base = RandomExperimentConfig(v=14, resources=5, seed=0)
        kwargs = dict(
            error_model="resource_bias",
            scenarios=("paper",),
            base_config=base,
            instances=2,
            replications=2,
            seed=0,
        )
        serial = sweep_uncertainty([0.0, 0.4], workers=1, **kwargs)
        parallel = sweep_uncertainty([0.0, 0.4], workers=3, **kwargs)
        assert _point_payload(serial) == _point_payload(parallel)

    def test_repro_bench_workers_env_cannot_change_a_digit(self, monkeypatch):
        """The benchmark harness's REPRO_BENCH_WORKERS knob is inert on
        results: whatever worker count it parses, the sweep's payload is
        byte-identical to the serial run."""
        import importlib
        import sys

        bench_dir = str(
            __import__("pathlib").Path(__file__).resolve().parent.parent / "benchmarks"
        )
        monkeypatch.syspath_prepend(bench_dir)
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "3")
        sys.modules.pop("_common", None)
        common = importlib.import_module("_common")
        try:
            assert common.WORKERS == 3
            base = RandomExperimentConfig(v=12, resources=4, seed=0)
            kwargs = dict(
                error_model="gaussian",
                scenarios=("paper",),
                base_config=base,
                instances=1,
                replications=2,
                seed=0,
            )
            env_driven = sweep_uncertainty([0.3], workers=common.WORKERS, **kwargs)
            serial = sweep_uncertainty([0.3], workers=None, **kwargs)
            assert _point_payload(env_driven) == _point_payload(serial)
        finally:
            sys.modules.pop("_common", None)

    def test_replications_share_workload_but_not_truth(self):
        config = RandomExperimentConfig(v=14, resources=5, seed=0, scenario="paper")
        experiment = config.to_experiment_case()
        summary = run_replicated(
            experiment,
            error_model=make_error_model("gaussian", 0.4, seed=0),
            replications=4,
        )
        assert len(summary.makespans["HEFT"]) == 4
        assert len(set(summary.makespans["HEFT"])) > 1
        assert summary.improvement_stats.count == 4

    def test_zero_magnitude_replications_are_degenerate(self):
        config = RandomExperimentConfig(v=14, resources=5, seed=0, scenario="paper")
        experiment = config.to_experiment_case()
        summary = run_replicated(
            experiment,
            error_model=make_error_model("gaussian", 0.0, seed=0),
            replications=3,
        )
        for values in summary.makespans.values():
            assert len(set(values)) == 1
        for stat in summary.stats.values():
            assert stat.minimum == stat.maximum
            assert stat.ci95_half == pytest.approx(0.0, abs=1e-9)
