"""Property-based tests (hypothesis) on the core invariants.

These tests generate random workflows, cost structures and rescheduling
scenarios and assert the structural invariants that must hold regardless of
the inputs:

* every heuristic produces complete, precedence- and exclusivity-feasible
  schedules,
* AHEFT at clock 0 is HEFT,
* the adaptive loop never ends up worse than static HEFT (the accept-if-
  better guarantee),
* resource timelines never double-book,
* the topological sort really is topological.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.adaptive import run_adaptive, run_static
from repro.resources.dynamics import ResourceChangeModel
from repro.scheduling.aheft import aheft_reschedule
from repro.scheduling.base import ExecutionState, ResourceTimeline
from repro.scheduling.heft import heft_schedule
from repro.scheduling.validation import validate_schedule
from repro.utils.ordering import topological_order
from repro.utils.rng import spawn_rng
from repro.workflow.costs import HeterogeneousCostModel
from repro.workflow.dag import Workflow

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def random_workflow(draw, max_jobs: int = 14):
    """A random DAG with edges only from lower to higher job index."""
    n = draw(st.integers(min_value=2, max_value=max_jobs))
    wf = Workflow(f"hyp-{n}")
    for index in range(n):
        wf.add_job(f"j{index}")
    for dst in range(1, n):
        # each job gets at least one predecessor to keep the DAG connected
        preds = draw(
            st.sets(st.integers(min_value=0, max_value=dst - 1), min_size=1, max_size=min(3, dst))
        )
        for src in preds:
            data = draw(st.floats(min_value=0.0, max_value=40.0, allow_nan=False))
            wf.add_edge(f"j{src}", f"j{dst}", data=data)
    return wf


@st.composite
def priced_workflow(draw):
    wf = draw(random_workflow())
    seed = draw(st.integers(min_value=0, max_value=10_000))
    beta = draw(st.sampled_from([0.1, 0.5, 1.0]))
    rng = spawn_rng(seed, "hyp-costs")
    base = {job: float(rng.uniform(1.0, 60.0)) for job in wf.jobs}
    costs = HeterogeneousCostModel(wf, base, beta=beta, seed=seed)
    return wf, costs


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
class TestSchedulingProperties:
    @SETTINGS
    @given(case=priced_workflow(), n_resources=st.integers(min_value=1, max_value=5))
    def test_heft_schedules_are_feasible(self, case, n_resources):
        wf, costs = case
        resources = [f"r{i}" for i in range(1, n_resources + 1)]
        schedule = heft_schedule(wf, costs, resources)
        assert len(schedule) == wf.num_jobs
        assert validate_schedule(wf, costs, schedule) == []

    @SETTINGS
    @given(case=priced_workflow(), n_resources=st.integers(min_value=1, max_value=4))
    def test_aheft_at_clock_zero_equals_heft(self, case, n_resources):
        wf, costs = case
        resources = [f"r{i}" for i in range(1, n_resources + 1)]
        assert (
            aheft_reschedule(wf, costs, resources).to_dict()
            == heft_schedule(wf, costs, resources).to_dict()
        )

    @SETTINGS
    @given(
        case=priced_workflow(),
        fraction=st.sampled_from([0.2, 0.5, 1.0]),
        when=st.floats(min_value=0.05, max_value=0.9),
    )
    def test_rescheduling_mid_flight_stays_feasible(self, case, fraction, when):
        wf, costs = case
        previous = heft_schedule(wf, costs, ["r1", "r2"])
        clock = max(previous.makespan() * when, 1e-6)
        state = ExecutionState.from_schedule(previous, clock, jobs=wf.jobs)
        extra = max(1, math.ceil(2 * fraction))
        resources = ["r1", "r2"] + [f"x{i}" for i in range(extra)]
        candidate = aheft_reschedule(
            wf, costs, resources, clock=clock,
            previous_schedule=previous, execution_state=state,
        )
        assert len(candidate) == wf.num_jobs
        assert validate_schedule(wf, costs, candidate) == []
        for job in state.not_started_jobs():
            assert candidate.assignment(job).start >= clock - 1e-9

    @SETTINGS
    @given(
        case=priced_workflow(),
        initial=st.integers(min_value=1, max_value=3),
        interval=st.sampled_from([20.0, 60.0, 150.0]),
        fraction=st.sampled_from([0.25, 0.5, 1.0]),
    )
    def test_adaptive_never_worse_than_static(self, case, initial, interval, fraction):
        wf, costs = case
        pool = ResourceChangeModel(
            initial_size=initial, interval=interval, fraction=fraction, max_events=16
        ).build_pool()
        static = run_static(wf, costs, pool)
        adaptive = run_adaptive(wf, costs, pool)
        assert adaptive.makespan <= static.makespan + 1e-6
        assert (
            validate_schedule(wf, costs, adaptive.final_schedule, pool=pool) == []
        )


class TestDataStructureProperties:
    @SETTINGS
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                st.floats(min_value=0.1, max_value=20.0, allow_nan=False),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_timeline_never_double_books(self, tasks):
        timeline = ResourceTimeline("r")
        placed = []
        for index, (ready, duration) in enumerate(tasks):
            start = timeline.earliest_start(ready, duration, insertion=True)
            timeline.occupy(start, start + duration, f"t{index}")
            placed.append((start, start + duration))
        placed.sort()
        for (s1, f1), (s2, f2) in zip(placed, placed[1:]):
            assert s2 >= f1 - 1e-9

    @SETTINGS
    @given(random_workflow())
    def test_topological_order_is_topological(self, wf):
        order = wf.topological_order()
        index = {job: i for i, job in enumerate(order)}
        assert len(order) == wf.num_jobs
        for src, dst, _ in wf.edges():
            assert index[src] < index[dst]

    @SETTINGS
    @given(random_workflow())
    def test_serialization_round_trip(self, wf):
        from repro.workflow.serialization import workflow_from_json, workflow_to_json

        rebuilt = workflow_from_json(workflow_to_json(wf))
        assert rebuilt.jobs == wf.jobs
        assert sorted(rebuilt.edges()) == sorted(wf.edges())

    @SETTINGS
    @given(case=priced_workflow())
    def test_upward_rank_dominates_successors(self, case):
        from repro.workflow.analysis import upward_ranks

        wf, costs = case
        ranks = upward_ranks(wf, costs, ["r1", "r2"])
        for src, dst, _ in wf.edges():
            assert ranks[src] >= ranks[dst] - 1e-9


class TestIncrementalRankProperties:
    @SETTINGS
    @given(
        case=priced_workflow(),
        n_resources=st.integers(min_value=1, max_value=4),
        batches=st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=10_000),
                    st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
                ),
                min_size=1,
                max_size=6,
            ),
            min_size=1,
            max_size=4,
        ),
    )
    def test_dirty_cone_ranks_equal_full_recompute(
        self, case, n_resources, batches
    ):
        """Random set_data batches: patched ranks == cold full recompute."""
        from repro.workflow.analysis import _RANK_CACHE, upward_ranks

        wf, costs = case
        resources = [f"r{i}" for i in range(1, n_resources + 1)]
        edges = wf.edges()
        upward_ranks(wf, costs, resources)  # prime the cache
        for batch in batches:
            for pick, volume in batch:
                src, dst, _ = edges[pick % len(edges)]
                wf.set_data(src, dst, volume)
            incremental = upward_ranks(wf, costs, resources)
            _RANK_CACHE.pop(costs, None)
            full = upward_ranks(wf, costs, resources)
            assert incremental == full
