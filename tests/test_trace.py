"""Tests for execution traces and Gantt rendering."""

import pytest

from repro.scheduling.base import Assignment, Schedule
from repro.simulation.trace import ExecutionTrace, TransferRecord, render_gantt


@pytest.fixture
def trace():
    t = ExecutionTrace(workflow_name="wf", strategy="TEST")
    t.record_job("a", "r1", 0.0, 5.0)
    t.record_job("b", "r2", 6.0, 10.0)
    t.record_transfer(TransferRecord("a", "b", "r1", "r2", 5.0, 6.0))
    t.record_event(5.0, "reschedule-adopted", "+r3")
    t.record_event(8.0, "pool-change", "+r4")
    return t


class TestExecutionTrace:
    def test_makespan(self, trace):
        assert trace.makespan() == 10.0
        assert ExecutionTrace().makespan() == 0.0

    def test_job_queries(self, trace):
        assert trace.actual_start("b") == 6.0
        assert trace.actual_finish("a") == 5.0
        assert trace.resource_of("a") == "r1"
        assert trace.resources_used() == ["r1", "r2"]
        assert trace.jobs() == ["a", "b"]

    def test_transfer_accounting(self, trace):
        assert trace.total_transfer_time() == pytest.approx(1.0)
        assert trace.transfers[0].duration == pytest.approx(1.0)

    def test_event_queries(self, trace):
        assert trace.rescheduling_count() == 1
        assert len(trace.events_of_kind("pool-change")) == 1

    def test_utilisation(self, trace):
        assert trace.resource_busy_time("r1") == 5.0
        assert trace.utilisation("r1") == pytest.approx(0.5)
        assert trace.utilisation("r2") == pytest.approx(0.4)

    def test_to_schedule(self, trace):
        schedule = trace.to_schedule()
        assert isinstance(schedule, Schedule)
        assert schedule.makespan() == 10.0
        assert schedule.resource_of("b") == "r2"

    def test_to_rows_sorted_by_resource_then_time(self, trace):
        rows = trace.to_rows()
        assert rows[0][0] == "r1"
        assert rows[-1][0] == "r2"


class TestRenderGantt:
    def test_renders_one_row_per_resource(self, trace):
        text = render_gantt(trace)
        lines = text.splitlines()
        assert any("r1" in line for line in lines)
        assert any("r2" in line for line in lines)

    def test_renders_schedule_objects_too(self):
        schedule = Schedule()
        schedule.add(Assignment("x", "r1", 0.0, 4.0))
        text = render_gantt(schedule, width=40)
        assert "r1" in text

    def test_empty_schedule(self):
        assert "empty" in render_gantt(Schedule())
