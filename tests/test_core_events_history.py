"""Tests for grid events, the event bus, history repository and predictor."""

import pytest

from repro.core.events import (
    EventBus,
    GridEvent,
    PerformanceVarianceEvent,
    ResourcePoolChangeEvent,
    WorkflowFinishedEvent,
)
from repro.core.history import PerformanceHistoryRepository, PerformanceRecord
from repro.core.predictor import HistoryAdjustedCostModel, Predictor


class TestEvents:
    def test_pool_change_requires_content(self):
        with pytest.raises(ValueError):
            ResourcePoolChangeEvent(time=1.0)
        event = ResourcePoolChangeEvent(time=1.0, added=("r9",))
        assert event.kind == "ResourcePoolChangeEvent"

    def test_performance_variance_deviation(self):
        event = PerformanceVarianceEvent(
            time=10.0, job_id="a", scheduled_finish=10.0, actual_finish=12.0
        )
        assert event.deviation == pytest.approx(2.0)
        assert event.relative_deviation == pytest.approx(0.2)

    def test_variance_with_zero_schedule_is_zero(self):
        event = PerformanceVarianceEvent(time=1.0, job_id="a", scheduled_finish=0.0, actual_finish=3.0)
        assert event.relative_deviation == 0.0

    def test_workflow_finished_event(self):
        assert WorkflowFinishedEvent(time=5.0, makespan=5.0).makespan == 5.0


class TestEventBus:
    def test_publish_to_matching_subscriber(self):
        bus = EventBus()
        received = []
        bus.subscribe(ResourcePoolChangeEvent, received.append)
        delivered = bus.publish(ResourcePoolChangeEvent(time=1.0, added=("r1",)))
        assert delivered == 1
        assert len(received) == 1

    def test_subscription_by_base_class_receives_subclasses(self):
        bus = EventBus()
        received = []
        bus.subscribe(GridEvent, received.append)
        bus.publish(ResourcePoolChangeEvent(time=1.0, added=("r1",)))
        bus.publish(PerformanceVarianceEvent(time=2.0, job_id="a"))
        assert len(received) == 2

    def test_non_matching_events_not_delivered(self):
        bus = EventBus()
        received = []
        bus.subscribe(PerformanceVarianceEvent, received.append)
        bus.publish(ResourcePoolChangeEvent(time=1.0, added=("r1",)))
        assert received == []

    def test_log_keeps_everything(self):
        bus = EventBus()
        bus.publish(ResourcePoolChangeEvent(time=1.0, added=("r1",)))
        bus.publish(WorkflowFinishedEvent(time=2.0, makespan=2.0))
        assert len(bus.log) == 2
        assert len(bus.events_of(WorkflowFinishedEvent)) == 1


class TestHistory:
    def test_record_and_average(self):
        history = PerformanceHistoryRepository()
        history.record_execution("blast", "r1", 10.0)
        history.record_execution("blast", "r1", 14.0)
        assert history.observed_duration("blast", "r1") == pytest.approx(12.0)
        assert history.observation_count("blast", "r1") == 2

    def test_operation_level_average(self):
        history = PerformanceHistoryRepository()
        history.record_execution("blast", "r1", 10.0)
        history.record_execution("blast", "r2", 20.0)
        assert history.observed_duration("blast") == pytest.approx(15.0)

    def test_missing_observation_returns_none(self):
        history = PerformanceHistoryRepository()
        assert history.observed_duration("nothing") is None
        assert history.observed_duration("nothing", "r1") is None

    def test_decay_prefers_recent_observations(self):
        history = PerformanceHistoryRepository(decay=0.5)
        history.record_execution("op", "r1", 100.0)
        history.record_execution("op", "r1", 10.0)
        assert history.observed_duration("op", "r1") < 55.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            PerformanceRecord(operation="op", resource_id="r1", duration=-1.0)

    def test_invalid_decay_rejected(self):
        with pytest.raises(ValueError):
            PerformanceHistoryRepository(decay=0.0)

    def test_clear(self):
        history = PerformanceHistoryRepository()
        history.record_execution("op", "r1", 1.0)
        history.clear()
        assert len(history) == 0
        assert history.operations() == []


class TestPredictor:
    def test_empty_history_returns_prior(self, diamond_costs):
        predictor = Predictor(PerformanceHistoryRepository())
        assert predictor.estimate(diamond_costs) is diamond_costs

    def test_history_overrides_prior(self, diamond_workflow, diamond_costs):
        history = PerformanceHistoryRepository()
        history.record_execution("task", "r1", 100.0)  # all diamond jobs share operation "task"
        predictor = Predictor(history)
        model = predictor.estimate(diamond_costs)
        assert isinstance(model, HistoryAdjustedCostModel)
        assert model.computation_cost("a", "r1") == pytest.approx(100.0)

    def test_blend_mixes_prior_and_history(self, diamond_workflow, diamond_costs):
        history = PerformanceHistoryRepository()
        history.record_execution("task", "r1", 100.0)
        model = HistoryAdjustedCostModel(diamond_costs, history, blend=0.5)
        expected = 0.5 * 100.0 + 0.5 * diamond_costs.computation_cost("a", "r1")
        assert model.computation_cost("a", "r1") == pytest.approx(expected)

    def test_falls_back_to_operation_average_for_unseen_resource(self, diamond_costs):
        history = PerformanceHistoryRepository()
        history.record_execution("task", "r1", 50.0)
        model = HistoryAdjustedCostModel(diamond_costs, history)
        assert model.computation_cost("a", "r2") == pytest.approx(50.0)

    def test_communication_costs_untouched(self, diamond_costs):
        history = PerformanceHistoryRepository()
        history.record_execution("task", "r1", 50.0)
        model = HistoryAdjustedCostModel(diamond_costs, history)
        assert model.communication_cost("a", "c", "r1", "r2") == pytest.approx(3.0)
        assert model.average_communication_cost("a", "c") == pytest.approx(3.0)

    def test_estimation_matrix_shape(self, diamond_workflow, diamond_costs):
        predictor = Predictor(PerformanceHistoryRepository())
        matrix = predictor.estimation_matrix(diamond_costs, ["r1", "r2"])
        assert matrix.shape == (4, 2)
        assert matrix[0, 0] == pytest.approx(2.0)

    def test_invalid_blend_rejected(self, diamond_costs):
        with pytest.raises(ValueError):
            HistoryAdjustedCostModel(diamond_costs, PerformanceHistoryRepository(), blend=2.0)
