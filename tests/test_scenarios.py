"""Tests for the scenario engine (repro.scenarios).

Covers the ISSUE-2 guarantees:

* every registered scenario (and random compositions of scenario parts)
  materialises into a *valid* event stream — times monotone, departures
  only remove present resources, the pool never drops below one resource;
* the ``static`` scenario reproduces PR-1's bit-identical schedules;
* the ``paper`` scenario is pool-equivalent to the (R, Δ, δ)
  ``ResourceChangeModel`` and yields the same adaptive runs;
* departures and performance changes flow end to end through the adaptive
  loop (kills, wasted work, forced adoptions) and the cost scaling.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import run_adaptive, run_dynamic, run_static
from repro.resources.dynamics import ResourceChangeModel, StaticResourceModel
from repro.scenarios import (
    ChurnScenario,
    DegradationScenario,
    DepartureScenario,
    JoinBurstScenario,
    LoadSpikeScenario,
    PaperJoinScenario,
    ScaledCostModel,
    ScenarioError,
    ScenarioEvent,
    StaticScenario,
    available_scenarios,
    compose,
    make_scenario,
    materialize,
    scenario_summary,
    validate_events,
)
from repro.scheduling.heft import heft_schedule


@pytest.fixture
def case30(make_case):
    return make_case(v=30, seed=11)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_required_adversarial_scenarios_registered(self):
        names = available_scenarios()
        for required in ("departures", "degradation", "load_spike", "churn"):
            assert required in names

    def test_every_registered_scenario_materialises(self):
        for name in available_scenarios():
            run = materialize(make_scenario(name), initial_size=6, seed=1)
            validate_events(run.events, initial_size=6)
            assert len(run.pool.available_at(0.0)) == 6
            assert scenario_summary(name)

    def test_unknown_scenario_raises(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            make_scenario("does-not-exist")

    def test_params_round_trip_into_factory(self):
        scenario = make_scenario("churn", interval=100.0, join_fraction=0.5)
        assert scenario.params()["interval"] == 100.0
        assert scenario.params()["join_fraction"] == 0.5


# ----------------------------------------------------------------------
# stream validity (property-based)
# ----------------------------------------------------------------------
_PARTS = st.sampled_from(
    [
        StaticScenario(),
        PaperJoinScenario(interval=50.0, fraction=0.2, max_events=10),
        PaperJoinScenario(interval=120.0, fraction=0.4, max_events=6),
        DepartureScenario(interval=75.0, fraction=0.3, max_events=6),
        DepartureScenario(interval=200.0, fraction=0.6, max_events=4),
        JoinBurstScenario(at=90.0, fraction=1.0),
        ChurnScenario(interval=60.0, join_fraction=0.3, leave_fraction=0.3, max_events=8),
        DegradationScenario(at=40.0, fraction=0.5, factor=3.0, recover_at=300.0),
        LoadSpikeScenario(start=30.0, duration=100.0, factor=2.0),
    ]
)


class TestStreamValidity:
    @settings(max_examples=60, deadline=None)
    @given(
        parts=st.lists(_PARTS, min_size=1, max_size=4),
        initial_size=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_any_composition_materialises_validly(self, parts, initial_size, seed):
        scenario = compose(*parts)
        run = materialize(scenario, initial_size=initial_size, seed=seed)
        # validate_events re-checks monotone times and pool-never-below-one
        validate_events(run.events, initial_size=initial_size)
        times = [event.time for event in run.events]
        assert times == sorted(times)
        assert all(time > 0 for time in times)
        # the concrete pool agrees: at least one resource at every instant
        checkpoints = [0.0] + times + [time + 1e-9 for time in times]
        for when in checkpoints:
            assert len(run.pool.available_at(when)) >= 1
        # departures only ever removed resources that had already joined
        for rid in run.pool.all_resource_ids():
            res = run.pool.resource(rid)
            if res.available_until is not None:
                assert res.available_until > res.available_from
        # perf factors are positive everywhere
        for when in checkpoints:
            for rid in run.pool.available_at(when):
                assert run.profile.factor_at(rid, when) > 0

    def test_monotonicity_violation_rejected(self):
        events = [ScenarioEvent(time=10.0, join=1), ScenarioEvent(time=5.0, join=1)]
        with pytest.raises(ScenarioError, match="non-decreasing"):
            validate_events(events, initial_size=3)

    def test_pool_underflow_rejected(self):
        events = [ScenarioEvent(time=10.0, leave=3)]
        with pytest.raises(ScenarioError, match="at least one resource"):
            validate_events(events, initial_size=3)

    def test_materialize_clamps_draining_departures(self):
        # 4 departures/event on a pool of 3 can never be realised fully;
        # the materialiser clamps instead of producing an invalid stream.
        scenario = DepartureScenario(interval=10.0, fraction=2.0, max_events=5)
        run = materialize(scenario, initial_size=3, seed=0)
        validate_events(run.events, initial_size=3)
        assert len(run.pool.available_at(1e9)) >= 1

    def test_event_validation_in_constructor(self):
        with pytest.raises(ScenarioError):
            ScenarioEvent(time=0.0, join=1)
        with pytest.raises(ScenarioError):
            ScenarioEvent(time=1.0, join=-1)
        with pytest.raises(ScenarioError):
            ScenarioEvent(time=1.0, perf=((2, -1.0),))


# ----------------------------------------------------------------------
# equivalence with the PR-1 world
# ----------------------------------------------------------------------
class TestPaperEquivalence:
    def test_static_scenario_reproduces_static_model_schedule(self, case30):
        """The ``static`` scenario must be bit-identical to PR-1's path."""
        scenario_pool = materialize(StaticScenario(), initial_size=8, seed=0).pool
        model_pool = StaticResourceModel(size=8).build_pool()
        assert scenario_pool.all_resource_ids() == model_pool.all_resource_ids()
        a = heft_schedule(case30.workflow, case30.costs, scenario_pool.available_at(0.0))
        b = heft_schedule(case30.workflow, case30.costs, model_pool.available_at(0.0))
        assert a.to_dict() == b.to_dict()

    def test_paper_scenario_matches_resource_change_model(self, case30):
        """Joins-only scenario ≡ ResourceChangeModel: same pool, same runs."""
        model = ResourceChangeModel(initial_size=8, interval=400.0, fraction=0.2)
        scenario = PaperJoinScenario(interval=400.0, fraction=0.2)
        run = materialize(scenario, initial_size=8, seed=0)

        model_pool = model.build_pool()
        horizon = 8000.0
        for event_a, event_b in zip(
            run.pool.events(), model_pool.events(until=horizon)
        ):
            assert event_a.time == event_b.time
            assert event_a.added == event_b.added
            assert event_a.removed == event_b.removed

        adaptive_model = run_adaptive(case30.workflow, case30.costs, model_pool)
        adaptive_scenario = run_adaptive(
            case30.workflow, case30.costs, run.pool, perf_profile=run.profile
        )
        assert adaptive_model.makespan < horizon  # guard: events cover the run
        assert adaptive_scenario.makespan == adaptive_model.makespan
        assert adaptive_scenario.final_schedule.to_dict() == (
            adaptive_model.final_schedule.to_dict()
        )
        assert (
            adaptive_scenario.rescheduling_count == adaptive_model.rescheduling_count
        )

    def test_change_model_bridges_to_scenario(self):
        model = ResourceChangeModel(
            initial_size=5, interval=100.0, fraction=0.2, leave_fraction=0.2
        )
        scenario = model.to_scenario()
        assert "paper" in scenario.name and "departures" in scenario.name
        run = materialize(scenario, initial_size=5, seed=0)
        assert any(event.leave for event in run.events)
        assert StaticResourceModel(size=3).to_scenario().name == "static"


# ----------------------------------------------------------------------
# cost scaling
# ----------------------------------------------------------------------
class TestScaledCostModel:
    def test_scales_computation_only(self, case30):
        base = case30.costs
        scaled = ScaledCostModel(base, {"r1": 2.0})
        jobs = case30.workflow.jobs
        assert scaled.computation_cost(jobs[0], "r1") == pytest.approx(
            2.0 * base.computation_cost(jobs[0], "r1")
        )
        assert scaled.computation_cost(jobs[0], "r2") == base.computation_cost(
            jobs[0], "r2"
        )
        assert scaled.has_uniform_communication == base.has_uniform_communication
        edges = case30.workflow.edges()
        if edges:
            src, dst = edges[0][0], edges[0][1]
            assert scaled.communication_cost(src, dst, "r1", "r2") == (
                base.communication_cost(src, dst, "r1", "r2")
            )

    def test_identity_factors_schedule_identically(self, case30):
        resources = [f"r{i}" for i in range(1, 6)]
        base = heft_schedule(case30.workflow, case30.costs, resources)
        scaled = heft_schedule(
            case30.workflow, ScaledCostModel(case30.costs, {}), resources
        )
        assert base.to_dict() == scaled.to_dict()

    def test_profile_snapshot(self, case30):
        run = materialize(
            DegradationScenario(at=100.0, fraction=0.5, factor=2.0, recover_at=200.0),
            initial_size=4,
            seed=0,
        )
        degraded = run.profile.state_at(150.0)
        assert degraded and all(f == 2.0 for f in degraded.values())
        assert run.profile.state_at(250.0) == {}
        assert run.profile.scaled_costs(case30.costs, 250.0) is case30.costs


# ----------------------------------------------------------------------
# adversarial dynamics end to end
# ----------------------------------------------------------------------
class TestAdversarialRuns:
    def test_departures_kill_and_force_replan(self, case30):
        run = materialize(
            DepartureScenario(interval=60.0, fraction=0.4, max_events=2),
            initial_size=6,
            seed=2,
        )
        assert any(event.leave for event in run.events)
        adaptive = run_adaptive(
            case30.workflow, case30.costs, run.pool, perf_profile=run.profile
        )
        forced = [d for d in adaptive.decisions if d.forced]
        assert forced and all(d.adopted for d in forced)
        # no unfinished work remains mapped beyond a resource's departure
        for assignment in adaptive.final_schedule:
            until = run.pool.resource(assignment.resource_id).available_until
            if until is not None:
                assert assignment.finish <= until + 1e-6

    def test_all_strategies_complete_under_every_scenario(self, case30):
        for name in available_scenarios():
            run = materialize(make_scenario(name), initial_size=8, seed=4)
            for runner in (run_static, run_adaptive, run_dynamic):
                result = runner(
                    case30.workflow, case30.costs, run.pool, perf_profile=run.profile
                )
                assert result.makespan > 0
                assert math.isfinite(result.makespan)

    def test_degradation_slows_static_execution(self, case30):
        nominal = materialize(StaticScenario(), initial_size=6, seed=0)
        degraded = materialize(
            LoadSpikeScenario(start=1.0, duration=1e7, factor=2.0),
            initial_size=6,
            seed=0,
        )
        fast = run_static(
            case30.workflow, case30.costs, nominal.pool, perf_profile=nominal.profile
        )
        slow = run_static(
            case30.workflow, case30.costs, degraded.pool, perf_profile=degraded.profile
        )
        assert slow.makespan > fast.makespan

    def test_degradation_triggers_adaptive_replanning(self, case30):
        run = materialize(
            DegradationScenario(at=150.0, fraction=0.5, factor=4.0, recover_at=None),
            initial_size=6,
            seed=1,
        )
        adaptive = run_adaptive(
            case30.workflow, case30.costs, run.pool, perf_profile=run.profile
        )
        assert adaptive.evaluated_events >= 1
        assert any(d.event == "perf-change" for d in adaptive.decisions)


class TestConfigScenarioWiring:
    def test_config_scenario_fields_flow_into_a_runnable_case(self):
        from repro.experiments.config import RandomExperimentConfig
        from repro.experiments.runner import run_case

        config = RandomExperimentConfig(
            v=12,
            resources=4,
            seed=5,
            scenario="churn",
            scenario_params=(("interval", 100.0),),
        )
        case = config.to_experiment_case()
        assert case.scenario.name == "churn"
        assert case.scenario.interval == 100.0
        assert config.as_params()["scenario"] == "churn"
        result = run_case(case, strategies=("HEFT", "AHEFT"))
        assert result.params["scenario"] == "churn"
        assert result.makespans["AHEFT"] > 0

    def test_sweep_registry_names_flow_through_config_layer(self):
        from repro.experiments.config import RandomExperimentConfig
        from repro.experiments.sweep import sweep_scenarios

        points = sweep_scenarios(
            ["departures"],
            base_config=RandomExperimentConfig(v=12, resources=4),
            instances=1,
            strategies=("HEFT", "AHEFT"),
            seed=1,
        )
        assert points[0].results[0].params["scenario"] == "departures"

    def test_scenario_case_params_report_scenario_not_stale_model(self):
        from repro.experiments.config import RandomExperimentConfig

        config = RandomExperimentConfig(
            v=12, resources=4, scenario="departures",
            scenario_params=(("interval", 250.0),),
        )
        params = config.to_experiment_case().params()
        assert params["scenario"] == "departures"
        assert params["scenario_params"]["interval"] == 250.0
        # the inactive (R, Δ, δ) join settings are not reported
        assert "interval" not in params and "fraction" not in params
        assert params["resources"] == 4
