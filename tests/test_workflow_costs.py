"""Tests for cost models."""

import pytest

from repro.workflow.costs import (
    HeterogeneousCostModel,
    TabularCostModel,
    UniformCostModel,
)


class TestTabularCostModel:
    def test_lookup(self, diamond_workflow, diamond_costs):
        assert diamond_costs.computation_cost("a", "r1") == 2.0
        assert diamond_costs.computation_cost("b", "r2") == 2.0

    def test_missing_job_in_table_raises(self, diamond_workflow):
        with pytest.raises(ValueError, match="missing jobs"):
            TabularCostModel(diamond_workflow, {"a": {"r1": 1.0}})

    def test_missing_resource_strict_raises(self, diamond_costs):
        with pytest.raises(KeyError):
            diamond_costs.computation_cost("a", "r9")

    def test_missing_resource_non_strict_returns_average(self, diamond_workflow):
        model = TabularCostModel(
            diamond_workflow,
            {j: {"r1": 2.0, "r2": 4.0} for j in diamond_workflow.jobs},
            strict=False,
        )
        assert model.computation_cost("a", "r9") == pytest.approx(3.0)

    def test_negative_cost_rejected(self, diamond_workflow):
        table = {j: {"r1": 1.0} for j in diamond_workflow.jobs}
        table["a"] = {"r1": -1.0}
        with pytest.raises(ValueError, match="negative"):
            TabularCostModel(diamond_workflow, table)

    def test_communication_zero_on_same_resource(self, diamond_costs):
        assert diamond_costs.communication_cost("a", "b", "r1", "r1") == 0.0

    def test_communication_equals_edge_data_across_resources(self, diamond_costs):
        assert diamond_costs.communication_cost("a", "c", "r1", "r2") == 3.0

    def test_average_computation(self, diamond_costs):
        assert diamond_costs.average_computation_cost("a") == pytest.approx(3.0)
        assert diamond_costs.average_computation_cost("a", ["r1"]) == 2.0

    def test_average_computation_none_means_intrinsic(self, diamond_costs):
        assert diamond_costs.average_computation_cost(
            "a", None
        ) == diamond_costs.intrinsic_average_computation_cost("a")

    def test_average_computation_empty_resources_raises(self, diamond_costs):
        # an explicitly empty pool must not silently fall back to the
        # intrinsic average (it used to, via a truthiness check)
        with pytest.raises(ValueError, match="empty resource set"):
            diamond_costs.average_computation_cost("a", [])
        with pytest.raises(ValueError, match="empty resource set"):
            diamond_costs.average_computation_cost("a", ())

    def test_average_computation_costs_vector_empty_resources_raises(
        self, diamond_costs
    ):
        with pytest.raises(ValueError, match="empty resource set"):
            diamond_costs.average_computation_costs([])

    def test_dense_views_match_scalar_queries(self, diamond_workflow, diamond_costs):
        resources = ["r1", "r2"]
        matrix = diamond_costs.computation_matrix(resources)
        averages = diamond_costs.average_computation_costs(resources)
        for i, job in enumerate(diamond_workflow.jobs):
            for j, rid in enumerate(resources):
                assert matrix[i, j] == diamond_costs.computation_cost(job, rid)
            assert averages[i] == diamond_costs.average_computation_cost(
                job, resources
            )
        comm = diamond_costs.edge_communication_costs()
        for k, (src, dst, _) in enumerate(diamond_workflow.edges()):
            assert comm[k] == diamond_costs.average_communication_cost(src, dst)

    def test_invalidate_cache_drops_stale_dense_views(self, diamond_costs):
        resources = ["r1", "r2"]
        before = diamond_costs.computation_matrix(resources)
        assert diamond_costs.computation_matrix(resources) is before  # memo hit
        # in-place table edit: invisible to the workflow version, so the
        # model must be told explicitly
        diamond_costs._comp["a"]["r1"] = 99.0
        diamond_costs.invalidate_cache()
        after = diamond_costs.computation_matrix(resources)
        assert after is not before
        assert after[0, 0] == 99.0

    def test_resources_listing(self, diamond_costs):
        assert diamond_costs.resources() == ["r1", "r2"]

    def test_ccr_positive(self, diamond_costs):
        assert diamond_costs.ccr() > 0


class TestHeterogeneousCostModel:
    @pytest.fixture
    def model(self, diamond_workflow):
        return HeterogeneousCostModel(
            diamond_workflow,
            {"a": 10.0, "b": 20.0, "c": 30.0, "d": 40.0},
            beta=1.0,
            bandwidth=2.0,
            seed=7,
        )

    def test_costs_within_beta_band(self, model):
        for job, base in model.base_costs.items():
            for rid in ["r1", "r2", "r3"]:
                cost = model.computation_cost(job, rid)
                assert base * 0.5 <= cost <= base * 1.5

    def test_deterministic_and_cached(self, diamond_workflow, model):
        other = HeterogeneousCostModel(
            diamond_workflow,
            dict(model.base_costs),
            beta=1.0,
            bandwidth=2.0,
            seed=7,
        )
        assert model.computation_cost("a", "r1") == other.computation_cost("a", "r1")
        assert model.computation_cost("a", "r1") == model.computation_cost("a", "r1")

    def test_new_resource_column_independent_of_query_order(self, model):
        first = model.computation_cost("a", "r99")
        # querying other resources must not change r99's draw
        model.computation_cost("a", "r1")
        assert model.computation_cost("a", "r99") == first

    def test_beta_zero_homogeneous(self, diamond_workflow):
        model = HeterogeneousCostModel(
            diamond_workflow, {j: 10.0 for j in diamond_workflow.jobs}, beta=0.0
        )
        assert model.computation_cost("a", "r1") == 10.0
        assert model.computation_cost("a", "r2") == 10.0

    def test_invalid_beta_raises(self, diamond_workflow):
        with pytest.raises(ValueError):
            HeterogeneousCostModel(diamond_workflow, {j: 1.0 for j in diamond_workflow.jobs}, beta=3.0)

    def test_missing_base_cost_raises(self, diamond_workflow):
        with pytest.raises(ValueError, match="missing"):
            HeterogeneousCostModel(diamond_workflow, {"a": 1.0})

    def test_communication_uses_bandwidth_and_latency(self, diamond_workflow):
        model = HeterogeneousCostModel(
            diamond_workflow,
            {j: 10.0 for j in diamond_workflow.jobs},
            bandwidth=2.0,
            latency=1.0,
        )
        # edge a->c carries 3.0 units: 1.0 + 3.0/2.0
        assert model.communication_cost("a", "c", "r1", "r2") == pytest.approx(2.5)
        assert model.communication_cost("a", "c", "r1", "r1") == 0.0

    def test_intrinsic_average_is_base(self, model):
        assert model.intrinsic_average_computation_cost("b") == 20.0

    def test_perturbed_changes_costs_but_stays_close(self, model):
        noisy = model.perturbed(error=0.2)
        for job in model.base_costs:
            ratio = noisy.base_costs[job] / model.base_costs[job]
            assert 0.8 <= ratio <= 1.2

    def test_perturbed_invalid_error_raises(self, model):
        with pytest.raises(ValueError):
            model.perturbed(error=1.5)


class TestUniformCostModel:
    def test_same_cost_everywhere(self, diamond_workflow):
        model = UniformCostModel(diamond_workflow, computation=5.0)
        assert model.computation_cost("a", "r1") == 5.0
        assert model.computation_cost("d", "anything") == 5.0

    def test_unknown_job_raises(self, diamond_workflow):
        model = UniformCostModel(diamond_workflow)
        with pytest.raises(KeyError):
            model.computation_cost("ghost", "r1")

    def test_ccr_of_uniform_model(self, diamond_workflow):
        model = UniformCostModel(diamond_workflow, computation=2.0)
        # average data = (2+3+1+4)/4 = 2.5; ccr = 2.5 / 2.0
        assert model.ccr() == pytest.approx(1.25)
