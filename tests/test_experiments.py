"""Tests for the experiment harness: metrics, config grids, runner, sweeps, reporting."""

import pytest

from repro.experiments.config import (
    APPLICATION_GRID,
    RANDOM_DAG_GRID,
    ApplicationExperimentConfig,
    RandomExperimentConfig,
    iter_random_grid,
    sample_application_grid,
    sample_random_grid,
)
from repro.experiments.metrics import (
    average,
    improvement_rate,
    makespan_statistics,
    resource_utilisation,
    schedule_length_ratio,
    speedup,
)
from repro.experiments.reporting import (
    format_table,
    render_case_results,
    render_improvement_table,
    render_series,
)
from repro.experiments.runner import ExperimentCase, run_case
from repro.experiments.sweep import (
    aggregate_results,
    improvement_rate_by,
    run_cases,
    sweep_application_parameter,
    sweep_random_parameter,
)
from repro.resources.dynamics import ResourceChangeModel
from repro.scheduling.heft import heft_schedule


class TestMetrics:
    def test_improvement_rate(self):
        assert improvement_rate(100.0, 80.0) == pytest.approx(0.2)
        assert improvement_rate(0.0, 10.0) == 0.0
        assert improvement_rate(100.0, 120.0) == pytest.approx(-0.2)

    def test_average(self):
        assert average([1.0, 2.0, 3.0]) == 2.0
        assert average([]) == 0.0

    def test_makespan_statistics(self):
        stats = makespan_statistics([10.0, 20.0, 30.0])
        assert stats.count == 3
        assert stats.mean == 20.0
        assert stats.minimum == 10.0 and stats.maximum == 30.0
        assert makespan_statistics([]).count == 0

    def test_slr_and_speedup_bounds(self, sample_workflow, sample_costs):
        resources = ["r1", "r2", "r3"]
        schedule = heft_schedule(sample_workflow, sample_costs, resources)
        slr = schedule_length_ratio(sample_workflow, sample_costs, schedule.makespan(), resources)
        assert slr >= 1.0
        sp = speedup(sample_workflow, sample_costs, schedule.makespan(), resources)
        assert sp >= 1.0

    def test_resource_utilisation(self, sample_workflow, sample_costs):
        resources = ["r1", "r2", "r3"]
        schedule = heft_schedule(sample_workflow, sample_costs, resources)
        utilisation = resource_utilisation(schedule, resources)
        assert set(utilisation) == set(resources)
        assert all(0.0 <= value <= 1.0 for value in utilisation.values())

    def test_resource_utilisation_counts_duplicate_copies(self):
        """Regression: duplicate copies placed by heft_dup were invisible.

        Summing ``assignments_on`` only missed ``Schedule.duplicates``, so a
        resource fully occupied by a duplicate reported 0% busy.
        """
        from repro.scheduling.base import Assignment, Schedule

        schedule = Schedule()
        schedule.add(Assignment("j1", "r1", 0.0, 10.0))
        schedule.add(Assignment("j2", "r1", 10.0, 20.0))
        schedule.add_duplicate(Assignment("j1", "r2", 0.0, 10.0))
        utilisation = resource_utilisation(schedule, ["r1", "r2", "r3"])
        assert utilisation["r1"] == pytest.approx(1.0)
        assert utilisation["r2"] == pytest.approx(0.5)  # the duplicate's footprint
        assert utilisation["r3"] == 0.0

    def test_speedup_and_slr_with_empty_resource_pool(self, sample_workflow, sample_costs):
        """Regression: an empty pool raised a bare ValueError from ``min()``.

        Both metrics now follow the module's empty-input convention and
        return 0.0 (no sequential baseline / no defined lower bound).
        """
        assert speedup(sample_workflow, sample_costs, 100.0, []) == 0.0
        assert schedule_length_ratio(sample_workflow, sample_costs, 100.0, []) == 0.0


class TestConfig:
    def test_grids_match_paper_tables(self):
        assert RANDOM_DAG_GRID["v"] == (20, 40, 60, 80, 100)
        assert RANDOM_DAG_GRID["ccr"] == (0.1, 0.5, 1.0, 5.0, 10.0)
        assert APPLICATION_GRID["parallelism"] == (200, 400, 600, 800, 1000)
        assert APPLICATION_GRID["interval"] == (400, 800, 1200, 1600)

    def test_random_config_builds_consistent_case(self):
        config = RandomExperimentConfig(v=25, ccr=0.5, resources=5, seed=3)
        case = config.build_case()
        assert case.workflow.num_jobs == 25
        model = config.build_resource_model()
        assert model.initial_size == 5
        assert config.as_params()["ccr"] == 0.5

    def test_application_config_builds_case(self):
        config = ApplicationExperimentConfig(application="wien2k", parallelism=5, seed=1)
        case = config.build_case()
        assert case.workflow.num_jobs == 2 * 5 + 8

    def test_unknown_application_rejected(self):
        with pytest.raises(ValueError):
            ApplicationExperimentConfig(application="nonsense")

    def test_full_grid_iteration_size(self):
        small_grid = dict(RANDOM_DAG_GRID)
        small_grid["v"] = (20,)
        small_grid["ccr"] = (1.0,)
        small_grid["out_degree"] = (0.2,)
        small_grid["beta"] = (0.5,)
        configs = list(iter_random_grid(small_grid))
        assert len(configs) == 5 * 4 * 4  # resources x interval x fraction

    def test_sampling_is_deterministic(self):
        a = sample_random_grid(5, seed=2)
        b = sample_random_grid(5, seed=2)
        c = sample_random_grid(5, seed=3)
        assert a == b
        assert a != c
        assert len(sample_application_grid("blast", 4, seed=1)) == 4


class TestRunnerAndSweep:
    @pytest.fixture
    def tiny_experiment(self):
        config = RandomExperimentConfig(v=20, ccr=1.0, resources=4, interval=200.0,
                                        fraction=0.25, omega_dag=80.0, seed=5)
        return ExperimentCase(config.build_case(), config.build_resource_model())

    def test_run_case_returns_all_strategies(self, tiny_experiment):
        result = run_case(tiny_experiment, strategies=("HEFT", "AHEFT", "MinMin"))
        assert set(result.makespans) == {"HEFT", "AHEFT", "MinMin"}
        assert result.makespans["AHEFT"] <= result.makespans["HEFT"] + 1e-9
        assert result.improvement() >= -1e-9

    def test_unknown_strategy_rejected(self, tiny_experiment):
        with pytest.raises(KeyError):
            run_case(tiny_experiment, strategies=("HEFT", "nope"))

    def test_run_cases_and_aggregation(self, tiny_experiment):
        results = run_cases([tiny_experiment, tiny_experiment], strategies=("HEFT", "AHEFT"))
        assert len(results) == 2
        grouped = aggregate_results(results, group_key="v")
        assert 20 in grouped
        rates = improvement_rate_by(results, group_key="v")
        assert 20 in rates

    def test_sweep_random_parameter_shapes(self):
        points = sweep_random_parameter(
            "ccr",
            [0.5, 5.0],
            base_config=RandomExperimentConfig(v=20, resources=4, interval=200.0,
                                               fraction=0.25, omega_dag=80.0),
            instances=2,
            strategies=("HEFT", "AHEFT"),
            seed=3,
        )
        assert [p.value for p in points] == [0.5, 5.0]
        for point in points:
            assert point.case_count == 2
            assert point.mean_makespans["AHEFT"] <= point.mean_makespans["HEFT"] + 1e-9
            assert point.improvement() >= -1e-9

    def test_sweep_application_parameter(self):
        points = sweep_application_parameter(
            "blast",
            "parallelism",
            [5, 10],
            base_config=ApplicationExperimentConfig(
                application="blast", resources=3, interval=200.0, fraction=0.5,
                omega_dag=80.0,
            ),
            instances=1,
            strategies=("HEFT", "AHEFT"),
            seed=2,
        )
        assert len(points) == 2
        assert points[1].mean_makespans["HEFT"] > points[0].mean_makespans["HEFT"]

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError):
            sweep_random_parameter("bogus", [1])
        with pytest.raises(ValueError):
            sweep_application_parameter("blast", "bogus", [1])


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "metric"], [["x", 1.234], ["longer", 5.6]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.2" in lines[2]

    def test_render_improvement_table(self):
        points = sweep_random_parameter(
            "ccr",
            [1.0],
            base_config=RandomExperimentConfig(v=20, resources=4, interval=200.0,
                                               fraction=0.25, omega_dag=80.0),
            instances=1,
            seed=1,
        )
        text = render_improvement_table(points, title="Table 3")
        assert "Table 3" in text
        assert "%" in text
        assert render_improvement_table([]) == "(no data)"

    def test_render_series(self):
        points = sweep_application_parameter(
            "blast", "ccr", [1.0],
            base_config=ApplicationExperimentConfig(application="blast", parallelism=5,
                                                    resources=3, interval=200.0,
                                                    fraction=0.5, omega_dag=80.0),
            instances=1, seed=1,
        )
        text = render_series({"BLAST": points}, title="Fig 8(a)")
        assert "HEFT1(BLAST)" in text
        assert "Fig 8(a)" in text
        assert render_series({}) == "(no data)"

    def test_render_case_results(self, small_random_case):
        config = RandomExperimentConfig(v=20, resources=4, interval=200.0, fraction=0.25,
                                        omega_dag=80.0, seed=9)
        result = run_case(
            ExperimentCase(config.build_case(), config.build_resource_model()),
            strategies=("HEFT", "AHEFT"),
        )
        text = render_case_results([result])
        assert "HEFT" in text and "%" in text
        assert render_case_results([]) == "(no data)"


class TestParallelCaseRunner:
    def _experiments(self):
        configs = [
            RandomExperimentConfig(
                v=20, resources=4, interval=200.0, fraction=0.25,
                omega_dag=80.0, seed=seed,
            )
            for seed in (0, 1, 2)
        ]
        return [
            ExperimentCase(config.build_case(), config.build_resource_model())
            for config in configs
        ]

    def test_workers_match_serial(self):
        from repro.experiments.sweep import run_cases

        serial = run_cases(self._experiments(), strategies=("HEFT", "AHEFT"))
        parallel = run_cases(
            self._experiments(), strategies=("HEFT", "AHEFT"), workers=2
        )
        assert [r.makespans for r in serial] == [r.makespans for r in parallel]
        assert [r.params for r in serial] == [r.params for r in parallel]
        assert [r.rescheduling_counts for r in serial] == [
            r.rescheduling_counts for r in parallel
        ]

    def test_workers_one_stays_serial(self):
        from repro.experiments.runner import run_case_batch

        experiments = self._experiments()
        assert len(run_case_batch(experiments, workers=1)) == len(experiments)

    def test_sweep_accepts_workers(self):
        points = sweep_random_parameter(
            "ccr",
            [1.0],
            base_config=RandomExperimentConfig(
                v=20, resources=4, interval=200.0, fraction=0.25, omega_dag=80.0
            ),
            instances=2,
            seed=2,
            workers=2,
        )
        reference = sweep_random_parameter(
            "ccr",
            [1.0],
            base_config=RandomExperimentConfig(
                v=20, resources=4, interval=200.0, fraction=0.25, omega_dag=80.0
            ),
            instances=2,
            seed=2,
        )
        assert [p.mean_makespans for p in points] == [
            p.mean_makespans for p in reference
        ]
