"""Universal scheduler-invariant suite (ISSUE-5).

One harness, parametrized over **every** strategy in the scheduling
registry — a newly registered strategy is property-tested here without
writing a single new test:

* **completeness** — every workflow job receives a primary assignment;
* **precedence** — consumers start only after their inputs are available
  (duplicate copies counting as data sources);
* **no overlap** — assignments (duplicates included) never collide on a
  resource;
* **foreign busy bookings** — slots booked by other tenants are binding:
  nothing the scheduler places (primary or duplicate) may intersect them;
* **determinism** — two identical calls produce bit-identical schedules;
* **adaptive completion** — every strategy with the ``reschedule``
  interface drives the full adaptive loop (``run_adaptive(strategy=...)``)
  to a feasible final schedule under every registered scenario, and a
  mid-execution replan around busy blocks keeps pinned work pinned.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import run_adaptive
from repro.generators.random_dag import RandomDAGParameters, generate_random_case
from repro.scenarios import available_scenarios, make_scenario, materialize
from repro.scheduling import (
    ExecutionState,
    available_schedulers,
    make_scheduler,
    validate_schedule,
)
from repro.scheduling.base import TIME_EPS

ALL_STRATEGIES = available_schedulers()
ADAPTIVE_STRATEGIES = [
    name for name in ALL_STRATEGIES if hasattr(make_scheduler(name), "reschedule")
]

RESOURCES = ("r1", "r2", "r3", "r4")


def _case(v: int, seed: int):
    params = RandomDAGParameters(v=v, out_degree=0.25, ccr=1.0, beta=0.5, omega_dag=80.0)
    return generate_random_case(params, seed=seed)


def _random_busy(seed: int, resources=RESOURCES, horizon: float = 600.0):
    """Deterministic foreign bookings: a few disjoint spans per resource."""
    rng = np.random.default_rng(seed)
    busy = {}
    for rid in resources:
        count = int(rng.integers(0, 4))
        if count == 0:
            continue
        points = np.sort(rng.uniform(0.0, horizon, size=2 * count))
        spans = [
            (float(points[2 * i]), float(points[2 * i + 1]))
            for i in range(count)
            if points[2 * i + 1] - points[2 * i] > 1.0
        ]
        if spans:
            busy[rid] = spans
    return busy


def _assert_respects_busy(schedule, busy):
    for assignment in schedule.all_assignments():
        for span_start, span_finish in busy.get(assignment.resource_id, ()):
            overlap = (
                assignment.start < span_finish - TIME_EPS
                and span_start < assignment.finish - TIME_EPS
            )
            assert not overlap, (
                f"{assignment.job_id} on {assignment.resource_id} "
                f"[{assignment.start}, {assignment.finish}) intersects busy "
                f"[{span_start}, {span_finish})"
            )


def _serialized(schedule):
    return (schedule.to_dict(), schedule.duplicates_to_dict())


class TestUniversalInvariants:
    """Every registered strategy, one property harness."""

    @pytest.mark.parametrize("name", ALL_STRATEGIES)
    @settings(max_examples=6, deadline=None)
    @given(
        v=st.integers(min_value=6, max_value=28),
        case_seed=st.integers(min_value=0, max_value=10**6),
        busy_seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_schedule_is_feasible_respects_busy_and_is_deterministic(
        self, name, v, case_seed, busy_seed
    ):
        case = _case(v=v, seed=case_seed)
        scheduler = make_scheduler(name)
        busy = _random_busy(busy_seed)

        schedule = scheduler.schedule(case.workflow, case.costs, list(RESOURCES))
        # completeness + precedence (duplicate-aware) + no overlap
        validate_schedule(case.workflow, case.costs, schedule)

        booked = scheduler.schedule(
            case.workflow, case.costs, list(RESOURCES), busy=busy
        )
        validate_schedule(case.workflow, case.costs, booked)
        _assert_respects_busy(booked, busy)

        # determinism: bit-identical output on identical inputs
        again = make_scheduler(name).schedule(
            case.workflow, case.costs, list(RESOURCES), busy=busy
        )
        assert _serialized(again) == _serialized(booked)

    @pytest.mark.parametrize("name", ADAPTIVE_STRATEGIES)
    def test_midrun_reschedule_pins_executed_work_and_respects_busy(self, name):
        case = _case(v=22, seed=41)
        scheduler = make_scheduler(name)
        plan = scheduler.schedule(case.workflow, case.costs, list(RESOURCES))
        clock = plan.makespan() * 0.5
        state = ExecutionState.from_schedule(plan, clock, jobs=case.workflow.jobs)
        busy = {"r2": [(clock + 10.0, clock + 60.0)]}
        replanned = scheduler.reschedule(
            case.workflow,
            case.costs,
            list(RESOURCES),
            clock=clock,
            previous_schedule=plan,
            execution_state=state,
            busy=busy,
        )
        validate_schedule(case.workflow, case.costs, replanned)
        # finished jobs keep their actual history; running jobs stay put
        for job in case.workflow.jobs:
            if state.is_finished(job):
                assert replanned.get(job) == plan.get(job)
            elif state.is_running(job):
                assert replanned.resource_of(job) == plan.resource_of(job)
        # new work plans around the foreign booking (pinned work may predate it)
        for assignment in replanned.all_assignments():
            if assignment.start >= clock - TIME_EPS:
                _assert_respects_busy(_single(assignment), busy)

    @pytest.mark.parametrize("name", ADAPTIVE_STRATEGIES)
    @pytest.mark.parametrize("scenario_name", available_scenarios())
    def test_run_adaptive_completes_under_every_scenario(self, name, scenario_name):
        case = _case(v=16, seed=13)
        run = materialize(make_scenario(scenario_name), initial_size=5, seed=7)
        result = run_adaptive(
            case.workflow,
            case.costs,
            run.pool,
            perf_profile=run.profile,
            strategy=name,
        )
        validate_schedule(
            case.workflow, case.costs, result.final_schedule, pool=run.pool
        )
        assert result.makespan > 0


def _single(assignment):
    """A one-assignment schedule so busy-respect can reuse the helper."""
    from repro.scheduling.base import Schedule

    out = Schedule(name="probe")
    out.add(assignment)
    return out


class TestRegistryContract:
    """The registry exposes the acceptance-criteria strategy set."""

    def test_required_strategies_are_registered(self):
        required = {
            "heft",
            "aheft",
            "minmin",
            "maxmin",
            "sufferage",
            "cpop",
            "lookahead_heft",
            "heft_dup",
        }
        assert required <= set(ALL_STRATEGIES)
        assert len(ALL_STRATEGIES) >= 8

    def test_fresh_registration_is_covered_for_free(self):
        """A strategy registered at runtime is instantly addressable."""
        from repro.scheduling.heft import HEFTScheduler
        from repro.scheduling.registry import SCHEDULERS, register_scheduler

        name = "only_for_this_test"
        register_scheduler(name, kind="static", summary="ephemeral")(HEFTScheduler)
        try:
            assert name in available_schedulers()
            scheduler = make_scheduler(name)
            case = _case(v=8, seed=1)
            schedule = scheduler.schedule(case.workflow, case.costs, list(RESOURCES))
            validate_schedule(case.workflow, case.costs, schedule)
        finally:
            SCHEDULERS.pop(name, None)
