"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.simulation.event_core import SimulationEngine, SimulationError


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule_at(5.0, lambda: seen.append("late"))
        engine.schedule_at(1.0, lambda: seen.append("early"))
        engine.run()
        assert seen == ["early", "late"]

    def test_ties_run_in_insertion_order(self):
        engine = SimulationEngine()
        seen = []
        for index in range(5):
            engine.schedule_at(3.0, lambda i=index: seen.append(i))
        engine.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties_before_sequence(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule_at(3.0, lambda: seen.append("low"), priority=5)
        engine.schedule_at(3.0, lambda: seen.append("high"), priority=0)
        engine.run()
        assert seen == ["high", "low"]

    def test_schedule_in_uses_relative_delay(self):
        engine = SimulationEngine(start_time=10.0)
        times = []
        engine.schedule_in(5.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [15.0]

    def test_scheduling_in_the_past_rejected(self):
        engine = SimulationEngine(start_time=10.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(5.0, lambda: None)
        with pytest.raises(SimulationError):
            engine.schedule_in(-1.0, lambda: None)

    def test_callbacks_can_schedule_more_events(self):
        engine = SimulationEngine()
        seen = []

        def first():
            seen.append(engine.now)
            engine.schedule_in(2.0, lambda: seen.append(engine.now))

        engine.schedule_at(1.0, first)
        engine.run()
        assert seen == [1.0, 3.0]

    def test_clock_never_goes_backwards(self):
        engine = SimulationEngine()
        times = []
        for t in [4.0, 2.0, 9.0, 2.0]:
            engine.schedule_at(t, lambda: times.append(engine.now))
        engine.run()
        assert times == sorted(times)


class TestRunControl:
    def test_run_until_stops_clock_at_bound(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule_at(1.0, lambda: seen.append(1))
        engine.schedule_at(100.0, lambda: seen.append(100))
        final = engine.run(until=50.0)
        assert seen == [1]
        assert final == 50.0
        assert engine.pending_events == 1

    def test_stop_inside_callback(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule_at(1.0, lambda: (seen.append(1), engine.stop()))
        engine.schedule_at(2.0, lambda: seen.append(2))
        engine.run()
        assert seen == [1]

    def test_cancelled_events_are_skipped(self):
        engine = SimulationEngine()
        seen = []
        event = engine.schedule_at(1.0, lambda: seen.append("cancelled"))
        engine.schedule_at(2.0, lambda: seen.append("kept"))
        event.cancel()
        engine.run()
        assert seen == ["kept"]

    def test_step_returns_false_when_empty(self):
        engine = SimulationEngine()
        assert engine.step() is False

    def test_processed_event_counter(self):
        engine = SimulationEngine()
        for t in range(5):
            engine.schedule_at(float(t), lambda: None)
        engine.run()
        assert engine.processed_events == 5

    def test_max_events_guard(self):
        engine = SimulationEngine(max_events=10)

        def rescheduling():
            engine.schedule_in(1.0, rescheduling)

        engine.schedule_at(0.0, rescheduling)
        with pytest.raises(SimulationError, match="maximum"):
            engine.run()

    def test_peek_next_time(self):
        engine = SimulationEngine()
        assert engine.peek_next_time() is None
        engine.schedule_at(7.0, lambda: None)
        assert engine.peek_next_time() == 7.0
