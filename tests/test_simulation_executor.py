"""Tests for the grid executors (static replay and just-in-time Min-Min)."""

import pytest

from repro.generators.sample import sample_dag_cost_model, sample_dag_pool, sample_dag_workflow
from repro.resources.pool import ResourcePool
from repro.resources.resource import Resource
from repro.scheduling.heft import heft_schedule
from repro.scheduling.minmin import MinMinScheduler
from repro.scheduling.validation import validate_schedule
from repro.simulation.executor import JustInTimeExecutor, StaticScheduleExecutor
from repro.workflow.costs import TabularCostModel


class TestStaticScheduleExecutor:
    def test_accurate_execution_reproduces_the_plan(self, sample_workflow, sample_costs):
        pool = ResourcePool([Resource("r1"), Resource("r2"), Resource("r3")])
        schedule = heft_schedule(sample_workflow, sample_costs, ["r1", "r2", "r3"])
        trace = StaticScheduleExecutor(sample_workflow, sample_costs, schedule, pool).run()
        assert trace.makespan() == pytest.approx(schedule.makespan())
        for job in sample_workflow.jobs:
            assert trace.actual_start(job) == pytest.approx(schedule.scheduled_start_time(job))
            assert trace.actual_finish(job) == pytest.approx(schedule.scheduled_finish_time(job))
            assert trace.resource_of(job) == schedule.resource_of(job)

    def test_transfers_recorded_between_distinct_resources(self, sample_workflow, sample_costs):
        pool = ResourcePool([Resource("r1"), Resource("r2"), Resource("r3")])
        schedule = heft_schedule(sample_workflow, sample_costs, ["r1", "r2", "r3"])
        trace = StaticScheduleExecutor(sample_workflow, sample_costs, schedule, pool).run()
        assert trace.transfers  # the sample DAG spans several resources
        for transfer in trace.transfers:
            assert transfer.source_resource != transfer.target_resource
            assert transfer.finish > transfer.start

    def test_incomplete_schedule_rejected(self, diamond_workflow, diamond_costs, two_resource_pool):
        schedule = heft_schedule(diamond_workflow, diamond_costs, ["r1", "r2"])
        partial = type(schedule)()
        partial.add(schedule.assignment("a"))
        with pytest.raises(ValueError, match="does not cover"):
            StaticScheduleExecutor(diamond_workflow, diamond_costs, partial, two_resource_pool)

    def test_unknown_resource_rejected(self, diamond_workflow, diamond_costs):
        schedule = heft_schedule(diamond_workflow, diamond_costs, ["r1", "r2"])
        pool = ResourcePool([Resource("r1")])
        with pytest.raises(ValueError, match="unknown resource"):
            StaticScheduleExecutor(diamond_workflow, diamond_costs, schedule, pool).run()

    def test_slower_actual_costs_stretch_the_trace(self, diamond_workflow, diamond_costs, two_resource_pool):
        schedule = heft_schedule(diamond_workflow, diamond_costs, ["r1", "r2"])
        slow = TabularCostModel(
            diamond_workflow,
            {
                job: {"r1": 2.0 * diamond_costs.computation_cost(job, "r1"),
                      "r2": 2.0 * diamond_costs.computation_cost(job, "r2")}
                for job in diamond_workflow.jobs
            },
        )
        trace = StaticScheduleExecutor(
            diamond_workflow, diamond_costs, schedule, two_resource_pool, actual_costs=slow
        ).run()
        assert trace.makespan() > schedule.makespan()
        # the executed trace is still a feasible schedule
        assert validate_schedule(diamond_workflow, diamond_costs, trace.to_schedule()) == []

    def test_trace_respects_precedence_and_exclusivity(self, small_random_case):
        wf, costs = small_random_case.workflow, small_random_case.costs
        pool = ResourcePool([Resource(f"r{i}") for i in range(1, 4)])
        schedule = heft_schedule(wf, costs, ["r1", "r2", "r3"])
        trace = StaticScheduleExecutor(wf, costs, schedule, pool).run()
        assert validate_schedule(wf, costs, trace.to_schedule()) == []


class TestJustInTimeExecutor:
    def test_executes_every_job(self, small_random_case):
        wf, costs = small_random_case.workflow, small_random_case.costs
        pool = ResourcePool([Resource(f"r{i}") for i in range(1, 4)])
        trace = JustInTimeExecutor(wf, costs, pool).run()
        assert len(trace.jobs()) == wf.num_jobs
        assert trace.makespan() > 0

    def test_trace_is_feasible(self, small_random_case):
        wf, costs = small_random_case.workflow, small_random_case.costs
        pool = ResourcePool([Resource(f"r{i}") for i in range(1, 4)])
        trace = JustInTimeExecutor(wf, costs, pool).run()
        assert validate_schedule(wf, costs, trace.to_schedule()) == []

    def test_uses_resources_that_join_later(self, sample_workflow, sample_costs):
        # with only one initial resource and a second joining immediately,
        # the dynamic mapper spreads work once the second resource exists
        pool = ResourcePool([Resource("r1"), Resource("r2", available_from=5.0)])
        trace = JustInTimeExecutor(sample_workflow, sample_costs, pool).run()
        assert set(trace.resources_used()) >= {"r1"}
        assert len(trace.jobs()) == sample_workflow.num_jobs

    def test_strategy_name_follows_mapper(self, diamond_workflow, diamond_costs, two_resource_pool):
        executor = JustInTimeExecutor(
            diamond_workflow, diamond_costs, two_resource_pool, mapper=MinMinScheduler()
        )
        assert executor.strategy_name == "MinMin"

    def test_no_resources_at_start_raises(self, diamond_workflow, diamond_costs):
        pool = ResourcePool([Resource("r1", available_from=100.0)])
        with pytest.raises(Exception):
            JustInTimeExecutor(diamond_workflow, diamond_costs, pool).run()

    def test_paper_assumption_dynamic_never_beats_static_on_sample(
        self, sample_workflow, sample_costs, sample_pool
    ):
        """On the worked example the dynamic strategy is no better than HEFT."""
        heft = heft_schedule(sample_workflow, sample_costs, ["r1", "r2", "r3"])
        trace = JustInTimeExecutor(sample_workflow, sample_costs, sample_pool).run()
        assert trace.makespan() >= heft.makespan() - 1e-9


class TestDepartureSemantics:
    """Departures (leave_fraction / scenario engine) honoured end to end."""

    @pytest.fixture
    def chain_costs(self, chain_workflow):
        return TabularCostModel(
            chain_workflow,
            {
                "a": {"r1": 10.0, "r2": 12.0},
                "b": {"r1": 10.0, "r2": 12.0},
                "c": {"r1": 10.0, "r2": 12.0},
            },
        )

    @pytest.fixture
    def departing_pool(self):
        """r1 departs at t=15, mid-way through the second chain job."""
        return ResourcePool(
            [Resource("r1", available_until=15.0), Resource("r2")]
        )

    def test_static_failover_reruns_killed_job(
        self, chain_workflow, chain_costs, departing_pool
    ):
        # HEFT puts the whole chain on the faster r1; r1 leaves at 15 while
        # job b runs, so b is killed (5 units wasted) and b, c fail over.
        schedule = heft_schedule(chain_workflow, chain_costs, ["r1", "r2"])
        assert all(schedule.resource_of(j) == "r1" for j in ("a", "b", "c"))
        trace = StaticScheduleExecutor(
            chain_workflow, chain_costs, schedule, departing_pool
        ).run()
        assert {k.job_id for k in trace.kills} == {"b"}
        assert trace.wasted_work() == pytest.approx(5.0)
        assert trace.resource_of("b") == "r2"
        assert trace.resource_of("c") == "r2"
        assert set(trace.jobs()) == {"a", "b", "c"}
        # job a finished on r1 before the departure and stays untouched
        assert trace.resource_of("a") == "r1"
        assert trace.makespan() > schedule.makespan()

    def test_static_fail_policy_raises(
        self, chain_workflow, chain_costs, departing_pool
    ):
        from repro.simulation.event_core import SimulationError

        schedule = heft_schedule(chain_workflow, chain_costs, ["r1", "r2"])
        executor = StaticScheduleExecutor(
            chain_workflow,
            chain_costs,
            schedule,
            departing_pool,
            departure_policy="fail",
        )
        with pytest.raises(SimulationError, match="departed"):
            executor.run()

    def test_departure_publishes_reschedule_event(
        self, chain_workflow, chain_costs, departing_pool
    ):
        from repro.core.events import EventBus, ResourcePoolChangeEvent

        bus = EventBus()
        schedule = heft_schedule(chain_workflow, chain_costs, ["r1", "r2"])
        StaticScheduleExecutor(
            chain_workflow, chain_costs, schedule, departing_pool, event_bus=bus
        ).run()
        published = bus.events_of(ResourcePoolChangeEvent)
        assert published and published[0].removed == ("r1",)
        assert published[0].time == pytest.approx(15.0)

    def test_job_finishing_exactly_at_departure_completes(
        self, chain_workflow, chain_costs
    ):
        # r1 departs exactly when job b is scheduled to finish: no kill.
        pool = ResourcePool([Resource("r1", available_until=20.0), Resource("r2")])
        schedule = heft_schedule(chain_workflow, chain_costs, ["r1", "r2"])
        trace = StaticScheduleExecutor(
            chain_workflow, chain_costs, schedule, pool
        ).run()
        assert not trace.kills
        assert trace.resource_of("b") == "r1"
        assert trace.resource_of("c") == "r2"  # stranded job fails over

    def test_jit_executor_remaps_killed_job(
        self, chain_workflow, chain_costs, departing_pool
    ):
        trace = JustInTimeExecutor(
            chain_workflow,
            chain_costs,
            departing_pool,
            mapper=MinMinScheduler(),
        ).run()
        assert {k.job_id for k in trace.kills} == {"b"}
        assert trace.wasted_work() == pytest.approx(5.0)
        assert trace.resource_of("b") == "r2"
        assert set(trace.jobs()) == {"a", "b", "c"}

    def test_perf_profile_scales_static_durations(
        self, chain_workflow, chain_costs, two_resource_pool
    ):
        from repro.scenarios import PerformanceProfile

        profile = PerformanceProfile()
        profile.set_factor("r1", 0.0, 2.0)  # r1 at half speed from the start
        schedule = heft_schedule(chain_workflow, chain_costs, ["r1", "r2"])
        trace = StaticScheduleExecutor(
            chain_workflow,
            chain_costs,
            schedule,
            two_resource_pool,
            perf_profile=profile,
        ).run()
        # every chain job ran on r1 at factor 2 -> 20 units each
        assert trace.actual_finish("a") == pytest.approx(20.0)
        assert trace.makespan() == pytest.approx(60.0)

    def test_failover_target_departure_also_kills(self, chain_workflow):
        """A job failed over to an unscheduled resource dies with it too."""
        costs = TabularCostModel(
            chain_workflow,
            {
                "a": {"r1": 10.0, "r2": 12.0, "r3": 6.0},
                "b": {"r1": 10.0, "r2": 12.0, "r3": 6.0},
                "c": {"r1": 10.0, "r2": 12.0, "r3": 6.0},
            },
        )
        pool = ResourcePool(
            [
                Resource("r1", available_until=15.0),
                Resource("r2"),
                Resource("r3", available_until=18.0),
            ]
        )
        # plan only over r1/r2: r3 exists in the grid but not in the plan
        schedule = heft_schedule(chain_workflow, costs, ["r1", "r2"])
        assert all(schedule.resource_of(j) == "r1" for j in ("a", "b", "c"))
        trace = StaticScheduleExecutor(chain_workflow, costs, schedule, pool).run()
        # b is killed twice: on r1 at 15 (5 wasted), then on its failover
        # target r3 at 18 (2 wasted) — the second kill is the regression
        assert [(k.resource_id, k.job_id) for k in trace.kills] == [
            ("r1", "b"),
            ("r3", "b"),
        ]
        assert trace.wasted_work() == pytest.approx(7.0)
        assert trace.resource_of("b") == "r2"
        assert trace.resource_of("c") == "r2"
        until = pool.resource("r3").available_until
        assert trace.actual_finish("b") > until  # finished after r3 left, on r2

    def test_kill_before_execution_begins_wastes_nothing(self):
        """A mapping killed while its input transfer is still in flight
        (start in the future) re-queues silently: no negative waste."""
        from repro.workflow.dag import Workflow

        wf = Workflow("transfer-heavy")
        wf.add_job("a")
        wf.add_job("b")
        wf.add_edge("a", "b", data=50.0)
        costs = TabularCostModel(
            wf, {"a": {"r1": 10.0, "r2": 100.0}, "b": {"r1": 100.0, "r2": 10.0}}
        )
        pool = ResourcePool([Resource("r1"), Resource("r2", available_until=30.0)])
        # Min-Min maps b to r2 at t=10 with start=60 (50-unit transfer);
        # r2 departs at t=30, before b ever begins executing.
        trace = JustInTimeExecutor(wf, costs, pool, mapper=MinMinScheduler()).run()
        assert not trace.kills
        assert trace.wasted_work() == 0.0
        assert trace.resource_of("b") == "r1"
        assert set(trace.jobs()) == {"a", "b"}

    def test_no_transfers_recorded_to_departed_resources(
        self, chain_workflow, chain_costs, departing_pool
    ):
        schedule = heft_schedule(chain_workflow, chain_costs, ["r1", "r2"])
        trace = StaticScheduleExecutor(
            chain_workflow, chain_costs, schedule, departing_pool
        ).run()
        for transfer in trace.transfers:
            until = departing_pool.resource(transfer.target_resource).available_until
            assert until is None or transfer.start < until
