"""Tests for the grid executors (static replay and just-in-time Min-Min)."""

import pytest

from repro.generators.sample import sample_dag_cost_model, sample_dag_pool, sample_dag_workflow
from repro.resources.pool import ResourcePool
from repro.resources.resource import Resource
from repro.scheduling.heft import heft_schedule
from repro.scheduling.minmin import MinMinScheduler
from repro.scheduling.validation import validate_schedule
from repro.simulation.executor import JustInTimeExecutor, StaticScheduleExecutor
from repro.workflow.costs import TabularCostModel


class TestStaticScheduleExecutor:
    def test_accurate_execution_reproduces_the_plan(self, sample_workflow, sample_costs):
        pool = ResourcePool([Resource("r1"), Resource("r2"), Resource("r3")])
        schedule = heft_schedule(sample_workflow, sample_costs, ["r1", "r2", "r3"])
        trace = StaticScheduleExecutor(sample_workflow, sample_costs, schedule, pool).run()
        assert trace.makespan() == pytest.approx(schedule.makespan())
        for job in sample_workflow.jobs:
            assert trace.actual_start(job) == pytest.approx(schedule.scheduled_start_time(job))
            assert trace.actual_finish(job) == pytest.approx(schedule.scheduled_finish_time(job))
            assert trace.resource_of(job) == schedule.resource_of(job)

    def test_transfers_recorded_between_distinct_resources(self, sample_workflow, sample_costs):
        pool = ResourcePool([Resource("r1"), Resource("r2"), Resource("r3")])
        schedule = heft_schedule(sample_workflow, sample_costs, ["r1", "r2", "r3"])
        trace = StaticScheduleExecutor(sample_workflow, sample_costs, schedule, pool).run()
        assert trace.transfers  # the sample DAG spans several resources
        for transfer in trace.transfers:
            assert transfer.source_resource != transfer.target_resource
            assert transfer.finish > transfer.start

    def test_incomplete_schedule_rejected(self, diamond_workflow, diamond_costs, two_resource_pool):
        schedule = heft_schedule(diamond_workflow, diamond_costs, ["r1", "r2"])
        partial = type(schedule)()
        partial.add(schedule.assignment("a"))
        with pytest.raises(ValueError, match="does not cover"):
            StaticScheduleExecutor(diamond_workflow, diamond_costs, partial, two_resource_pool)

    def test_unknown_resource_rejected(self, diamond_workflow, diamond_costs):
        schedule = heft_schedule(diamond_workflow, diamond_costs, ["r1", "r2"])
        pool = ResourcePool([Resource("r1")])
        with pytest.raises(ValueError, match="unknown resource"):
            StaticScheduleExecutor(diamond_workflow, diamond_costs, schedule, pool).run()

    def test_slower_actual_costs_stretch_the_trace(self, diamond_workflow, diamond_costs, two_resource_pool):
        schedule = heft_schedule(diamond_workflow, diamond_costs, ["r1", "r2"])
        slow = TabularCostModel(
            diamond_workflow,
            {
                job: {"r1": 2.0 * diamond_costs.computation_cost(job, "r1"),
                      "r2": 2.0 * diamond_costs.computation_cost(job, "r2")}
                for job in diamond_workflow.jobs
            },
        )
        trace = StaticScheduleExecutor(
            diamond_workflow, diamond_costs, schedule, two_resource_pool, actual_costs=slow
        ).run()
        assert trace.makespan() > schedule.makespan()
        # the executed trace is still a feasible schedule
        assert validate_schedule(diamond_workflow, diamond_costs, trace.to_schedule()) == []

    def test_trace_respects_precedence_and_exclusivity(self, small_random_case):
        wf, costs = small_random_case.workflow, small_random_case.costs
        pool = ResourcePool([Resource(f"r{i}") for i in range(1, 4)])
        schedule = heft_schedule(wf, costs, ["r1", "r2", "r3"])
        trace = StaticScheduleExecutor(wf, costs, schedule, pool).run()
        assert validate_schedule(wf, costs, trace.to_schedule()) == []


class TestJustInTimeExecutor:
    def test_executes_every_job(self, small_random_case):
        wf, costs = small_random_case.workflow, small_random_case.costs
        pool = ResourcePool([Resource(f"r{i}") for i in range(1, 4)])
        trace = JustInTimeExecutor(wf, costs, pool).run()
        assert len(trace.jobs()) == wf.num_jobs
        assert trace.makespan() > 0

    def test_trace_is_feasible(self, small_random_case):
        wf, costs = small_random_case.workflow, small_random_case.costs
        pool = ResourcePool([Resource(f"r{i}") for i in range(1, 4)])
        trace = JustInTimeExecutor(wf, costs, pool).run()
        assert validate_schedule(wf, costs, trace.to_schedule()) == []

    def test_uses_resources_that_join_later(self, sample_workflow, sample_costs):
        # with only one initial resource and a second joining immediately,
        # the dynamic mapper spreads work once the second resource exists
        pool = ResourcePool([Resource("r1"), Resource("r2", available_from=5.0)])
        trace = JustInTimeExecutor(sample_workflow, sample_costs, pool).run()
        assert set(trace.resources_used()) >= {"r1"}
        assert len(trace.jobs()) == sample_workflow.num_jobs

    def test_strategy_name_follows_mapper(self, diamond_workflow, diamond_costs, two_resource_pool):
        executor = JustInTimeExecutor(
            diamond_workflow, diamond_costs, two_resource_pool, mapper=MinMinScheduler()
        )
        assert executor.strategy_name == "MinMin"

    def test_no_resources_at_start_raises(self, diamond_workflow, diamond_costs):
        pool = ResourcePool([Resource("r1", available_from=100.0)])
        with pytest.raises(Exception):
            JustInTimeExecutor(diamond_workflow, diamond_costs, pool).run()

    def test_paper_assumption_dynamic_never_beats_static_on_sample(
        self, sample_workflow, sample_costs, sample_pool
    ):
        """On the worked example the dynamic strategy is no better than HEFT."""
        heft = heft_schedule(sample_workflow, sample_costs, ["r1", "r2", "r3"])
        trace = JustInTimeExecutor(sample_workflow, sample_costs, sample_pool).run()
        assert trace.makespan() >= heft.makespan() - 1e-9
