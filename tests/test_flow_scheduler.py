"""The min-cost max-flow scheduler: solver, graph, cost models, strategy."""

from __future__ import annotations

import dataclasses

import pytest

from repro.scheduling import make_scheduler, scheduler_kind
from repro.scheduling.flow import (
    BUSY_PU_OFFSET,
    DEFERRAL_COST,
    CreditCostModel,
    FlowNetwork,
    LocalityCostModel,
    MinCostFlowScheduler,
    OctopusCostModel,
    mincost_flow_reschedule,
    solve_assignment,
)
from repro.scheduling.frame import PartialScheduleFrame
from repro.scheduling.validation import validate_schedule
from repro.workflow.costs import TabularCostModel, UniformCostModel
from repro.workflow.dag import Workflow

RESOURCES = ["r1", "r2", "r3"]


class TestFlowSolver:
    def test_min_cost_route_beats_the_greedy_one(self):
        # two disjoint s->t routes: cheap (cost 1) and dear (cost 10)
        network = FlowNetwork(4)
        cheap = network.add_arc(0, 2, 1, 1)
        dear = network.add_arc(0, 3, 1, 10)
        network.add_arc(2, 1, 1, 0)
        network.add_arc(3, 1, 1, 0)
        flow, cost = network.min_cost_max_flow(0, 1)
        assert (flow, cost) == (2, 11)
        assert network.flow_on(cheap) == 1 and network.flow_on(dear) == 1

    def test_augmentation_reroutes_through_residual_arcs(self):
        """The classic 2x2 assignment where greedy is globally wrong.

        Greedy puts t1 on its cheap r1 (1) and forces t2 to r2 (5): total
        6.  Min-cost flow must push t2 back over the residual arc and pay
        3 instead — the whole point of the flow formulation.
        """
        placed = solve_assignment(
            ["t1", "t2"],
            ["r1", "r2"],
            lambda t, r: {("t1", "r1"): 1, ("t1", "r2"): 2,
                          ("t2", "r1"): 1, ("t2", "r2"): 5}[(t, r)],
            lambda t: 1000.0,
        )
        assert placed == {"t1": "r2", "t2": "r1"}

    def test_argument_validation(self):
        network = FlowNetwork(2)
        with pytest.raises(ValueError, match="out of range"):
            network.add_arc(0, 7, 1, 0)
        with pytest.raises(ValueError, match="non-negative"):
            network.add_arc(0, 1, -1, 0)
        with pytest.raises(ValueError, match="differ"):
            network.min_cost_max_flow(0, 0)
        with pytest.raises(ValueError, match="positive"):
            FlowNetwork(0)


class TestAssignmentGraph:
    def test_unit_capacity_spreads_a_wave(self):
        placed = solve_assignment(
            ["t1", "t2", "t3"],
            ["r1", "r2"],
            lambda t, r: {"r1": 1.0, "r2": 2.0}[r],
            lambda t: 100.0,
        )
        # two resources, one slot each: two placed on distinct resources
        assert len(placed) == 2
        assert sorted(placed.values()) == ["r1", "r2"]

    def test_cheap_deferral_empties_the_wave(self):
        placed = solve_assignment(
            ["t1", "t2"], ["r1"], lambda t, r: 50.0, lambda t: 1.0
        )
        assert placed == {}

    def test_empty_wave_and_missing_resources(self):
        assert solve_assignment([], ["r1"], lambda t, r: 0, lambda t: 0) == {}
        with pytest.raises(ValueError, match="resources"):
            solve_assignment(["t1"], [], lambda t, r: 0, lambda t: 0)

    def test_non_finite_costs_are_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            solve_assignment(
                ["t1"], ["r1"], lambda t, r: float("nan"), lambda t: 0.0
            )

    def test_identical_inputs_solve_identically(self):
        def run():
            return solve_assignment(
                ["a", "b", "c"],
                RESOURCES,
                lambda t, r: (hash((t, r)) % 97) / 7.0,
                lambda t: 500.0,
            )

        assert run() == run()


@pytest.fixture
def fork_case():
    """One source feeding three parallel jobs, uniform costs."""
    wf = Workflow("fork")
    wf.add_job("src")
    for job in ["x", "y", "z"]:
        wf.add_job(job)
        wf.add_edge("src", job, data=2.0)
    return wf, UniformCostModel(wf, computation=4.0)


class TestCostModels:
    def test_octopus_prices_busy_resources_up(self, fork_case):
        workflow, costs = fork_case
        frame = PartialScheduleFrame(workflow, costs, RESOURCES)
        model = OctopusCostModel(frame)
        assert model.assignment_cost("src", "r1") == 0
        assert model.assignment_cost("src", "r2") == 1  # core-id tie-break
        frame.place("src", "r1", 0.0, 4.0)
        assert model.assignment_cost("x", "r1") == BUSY_PU_OFFSET
        assert model.assignment_cost("x", "r2") == 1

    def test_octopus_ignores_bookings_finished_before_the_clock(self, fork_case):
        workflow, costs = fork_case
        frame = PartialScheduleFrame(workflow, costs, RESOURCES)
        frame.place("src", "r1", 0.0, 4.0)
        late = PartialScheduleFrame(
            workflow,
            costs,
            RESOURCES,
            clock=10.0,
            previous_schedule=frame.schedule,
        )
        assert OctopusCostModel(late).assignment_cost("x", "r1") == 0

    def test_locality_charges_for_remote_inputs(self, fork_case):
        workflow, costs = fork_case
        frame = PartialScheduleFrame(workflow, costs, RESOURCES)
        frame.place("src", "r2", 0.0, 4.0)
        model = LocalityCostModel(frame)
        local = model.assignment_cost("x", "r2")
        remote = model.assignment_cost("x", "r1")
        assert remote == pytest.approx(2.0, abs=1e-5)  # the edge's transfer
        assert local < remote

    def test_locality_refuses_to_price_unready_tasks(self, fork_case):
        workflow, costs = fork_case
        frame = PartialScheduleFrame(workflow, costs, RESOURCES)
        with pytest.raises(RuntimeError, match="no placement yet"):
            LocalityCostModel(frame).assignment_cost("x", "r1")

    def test_credit_scales_bids_both_ways(self, fork_case):
        workflow, costs = fork_case
        frame = PartialScheduleFrame(workflow, costs, RESOURCES)
        trusted = CreditCostModel(frame, credit_weight=1.0)
        eroded = CreditCostModel(frame, credit_weight=0.5)
        assert eroded.assignment_cost("src", "r1") == pytest.approx(
            2 * trusted.assignment_cost("src", "r1")
        )
        assert eroded.deferral_cost("src") == pytest.approx(DEFERRAL_COST / 2)

    def test_unknown_cost_model_rejected(self, fork_case):
        workflow, costs = fork_case
        with pytest.raises(ValueError, match="cost model"):
            mincost_flow_reschedule(workflow, costs, RESOURCES, cost_model="nope")
        with pytest.raises(ValueError, match="cost model"):
            MinCostFlowScheduler(cost_model="nope")


class TestMinCostFlowScheduler:
    @pytest.mark.parametrize("cost_model", ["octopus", "locality", "credit"])
    def test_static_schedule_is_feasible(self, make_case, cost_model):
        case = make_case(v=24, seed=3)
        scheduler = MinCostFlowScheduler(cost_model=cost_model)
        schedule = scheduler.schedule(case.workflow, case.costs, RESOURCES)
        validate_schedule(case.workflow, case.costs, schedule)
        assert len(schedule) == len(case.workflow.jobs)

    def test_waves_spread_ready_tasks_across_resources(self, fork_case):
        workflow, costs = fork_case
        schedule = MinCostFlowScheduler().schedule(workflow, costs, RESOURCES)
        wave = {schedule.resource_of(j) for j in ("x", "y", "z")}
        assert wave == set(RESOURCES)

    def test_locality_model_keeps_heavy_chains_local(self):
        wf = Workflow("chain")
        for job in ("a", "b"):
            wf.add_job(job)
        wf.add_edge("a", "b", data=1000.0)
        costs = UniformCostModel(wf, computation=1.0)
        schedule = MinCostFlowScheduler(cost_model="locality").schedule(
            wf, costs, RESOURCES
        )
        assert schedule.resource_of("b") == schedule.resource_of("a")

    def test_reschedule_pins_executed_history(self, make_case):
        case = make_case(v=18, seed=5)
        scheduler = MinCostFlowScheduler()
        initial = scheduler.schedule(case.workflow, case.costs, RESOURCES)
        clock = initial.makespan() * 0.5
        replanned = scheduler.reschedule(
            case.workflow,
            case.costs,
            RESOURCES,
            clock=clock,
            previous_schedule=initial,
        )
        validate_schedule(case.workflow, case.costs, replanned)
        for job in case.workflow.jobs:
            before = initial.get(job)
            if before is not None and before.finish <= clock:
                assert replanned.get(job) == before

    def test_deferral_dominated_wave_still_terminates(self, fork_case):
        """If every placement arc loses to deferral the loop must not spin."""
        workflow, costs = fork_case
        # a saturated pool: the octopus busy offsets exceed the (tiny)
        # deferral price, so the first solves defer everything
        import repro.scheduling.flow.scheduler as flow_scheduler

        class StubbornModel(OctopusCostModel):
            def deferral_cost(self, job):
                return 0.0  # always cheaper than any placement

        original = flow_scheduler.FLOW_COST_MODELS
        flow_scheduler.FLOW_COST_MODELS = {**original, "stubborn": StubbornModel}
        try:
            schedule = mincost_flow_reschedule(
                workflow, costs, RESOURCES, cost_model="stubborn"
            )
        finally:
            flow_scheduler.FLOW_COST_MODELS = original
        validate_schedule(workflow, costs, schedule)
        assert len(schedule) == len(workflow.jobs)

    def test_registry_entry_and_config_contract(self):
        assert scheduler_kind("mincost_flow") == "adaptive"
        scheduler = make_scheduler("mincost_flow", cost_model="credit")
        assert scheduler.cost_model == "credit"
        assert dataclasses.is_dataclass(scheduler)
        with pytest.raises(dataclasses.FrozenInstanceError):
            scheduler.cost_model = "octopus"
        with pytest.raises(ValueError, match="positive"):
            MinCostFlowScheduler(credit_weight=0.0)

    def test_bind_tenant_context_returns_a_reweighted_copy(self):
        scheduler = MinCostFlowScheduler(cost_model="credit")
        bound = scheduler.bind_tenant_context(credit_weight=0.625)
        assert bound.credit_weight == 0.625
        assert scheduler.credit_weight == 1.0
        assert bound.cost_model == "credit"


class TestFlowInMultiTenancy:
    def test_planner_binds_the_tenant_credit_weight(self, make_pool, make_case):
        from repro.core.credit import CreditLedger
        from repro.core.multi_tenant import MultiTenantPlanner
        from repro.workload.streams import WorkflowArrival

        ledger = CreditLedger()
        for _ in range(10):
            ledger.record_completion("t1", stretch=50.0, deadline_violated=True)
        planner = MultiTenantPlanner(
            make_pool(4),
            scheduler_factory=lambda: MinCostFlowScheduler(cost_model="credit"),
            policy="credit_drf",
            credit_ledger=ledger,
        )
        arrival = WorkflowArrival("t1", 0, 0.0, "random", make_case(v=10))
        planned = planner.plan_arrival(arrival, 0.0)
        assert planned.scheduler.credit_weight == pytest.approx(
            ledger.weight("t1")
        )
        assert planned.scheduler.credit_weight < 1.0

    def test_sweep_multi_workflow_accepts_the_strategy(self):
        from repro.experiments.multi_tenant import MultiTenantConfig
        from repro.experiments.sweep import sweep_multi_workflow

        base = MultiTenantConfig(
            tenants=2, resources=5, v=10, parallelism=5, max_arrivals=2, seed=0
        )
        points = sweep_multi_workflow(
            arrival_rates=[0.004],
            tenant_counts=[2],
            scenarios=["static"],
            policies=["credit_drf"],
            strategies=["mincost_flow"],
            base_config=base,
        )
        assert [point.strategy for point in points] == ["mincost_flow"]
        assert points[0].workflows > 0
