"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.generators.random_dag import RandomDAGParameters, generate_random_case
from repro.generators.sample import (
    sample_dag_cost_model,
    sample_dag_pool,
    sample_dag_workflow,
)
from repro.resources.dynamics import ResourceChangeModel
from repro.resources.pool import ResourcePool
from repro.resources.resource import Resource
from repro.workflow.costs import TabularCostModel, UniformCostModel
from repro.workflow.dag import Workflow


@pytest.fixture
def diamond_workflow() -> Workflow:
    """A 4-job diamond DAG: a -> {b, c} -> d."""
    wf = Workflow("diamond")
    for job in ["a", "b", "c", "d"]:
        wf.add_job(job)
    wf.add_edge("a", "b", data=2.0)
    wf.add_edge("a", "c", data=3.0)
    wf.add_edge("b", "d", data=1.0)
    wf.add_edge("c", "d", data=4.0)
    return wf


@pytest.fixture
def diamond_costs(diamond_workflow) -> TabularCostModel:
    """Two-resource tabular cost model for the diamond DAG."""
    return TabularCostModel(
        diamond_workflow,
        {
            "a": {"r1": 2.0, "r2": 4.0},
            "b": {"r1": 3.0, "r2": 2.0},
            "c": {"r1": 5.0, "r2": 4.0},
            "d": {"r1": 2.0, "r2": 3.0},
        },
    )


@pytest.fixture
def chain_workflow() -> Workflow:
    """A 3-job chain: a -> b -> c."""
    wf = Workflow("chain")
    for job in ["a", "b", "c"]:
        wf.add_job(job)
    wf.add_edge("a", "b", data=1.0)
    wf.add_edge("b", "c", data=1.0)
    return wf


@pytest.fixture
def two_resource_pool() -> ResourcePool:
    pool = ResourcePool()
    pool.add(Resource("r1"))
    pool.add(Resource("r2"))
    return pool


@pytest.fixture
def sample_workflow() -> Workflow:
    return sample_dag_workflow()


@pytest.fixture
def sample_costs(sample_workflow) -> TabularCostModel:
    return sample_dag_cost_model(sample_workflow)


@pytest.fixture
def sample_pool() -> ResourcePool:
    return sample_dag_pool()


@pytest.fixture
def small_random_case():
    """A small (20-job) random priced case, deterministic."""
    params = RandomDAGParameters(v=20, out_degree=0.3, ccr=1.0, beta=0.5)
    return generate_random_case(params, seed=123)


@pytest.fixture
def growing_pool() -> ResourcePool:
    """Four resources at t=0 plus two joining later."""
    pool = ResourcePool()
    for index in range(1, 5):
        pool.add(Resource(f"r{index}"))
    pool.add(Resource("r5", available_from=30.0))
    pool.add(Resource("r6", available_from=60.0))
    return pool


@pytest.fixture
def change_model() -> ResourceChangeModel:
    return ResourceChangeModel(initial_size=4, interval=25.0, fraction=0.25, max_events=8)
