"""Shared fixtures for the test suite.

Besides the classic example fixtures (diamond/chain DAGs, the Fig. 4
sample), three *factory* fixtures replace the ad-hoc builders test modules
used to carry locally:

* ``make_case(v=20, seed=0, **params)`` — a deterministic priced random-DAG
  case; keyword defaults mirror
  :class:`~repro.generators.random_dag.RandomDAGParameters`;
* ``make_pool(initial=4, joins=(), leaves={})`` — a resource pool with
  optional later joins and departure windows;
* ``make_scenario(name, **params)`` — a registered scenario instance, or —
  when ``initial_size`` is passed — its materialised
  :class:`~repro.scenarios.base.ScenarioRun` (pool + perf profile +
  validated events).
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--regen-goldens",
        action="store_true",
        default=False,
        help="regenerate committed golden fixtures (tests/goldens/) instead of "
        "comparing against them",
    )

from repro.generators.random_dag import RandomDAGParameters, generate_random_case
from repro.generators.sample import (
    sample_dag_cost_model,
    sample_dag_pool,
    sample_dag_workflow,
)
from repro.resources.dynamics import ResourceChangeModel
from repro.resources.pool import ResourcePool
from repro.resources.resource import Resource
from repro.workflow.costs import TabularCostModel, UniformCostModel
from repro.workflow.dag import Workflow


@pytest.fixture
def make_case():
    """Factory for deterministic priced random-DAG cases."""

    def factory(
        v: int = 20,
        *,
        seed: int = 0,
        instance: int = 0,
        out_degree: float = 0.2,
        ccr: float = 1.0,
        beta: float = 0.5,
        alpha: float = 1.0,
        omega_dag: float = 50.0,
    ):
        params = RandomDAGParameters(
            v=v,
            out_degree=out_degree,
            ccr=ccr,
            beta=beta,
            alpha=alpha,
            omega_dag=omega_dag,
        )
        return generate_random_case(params, seed=seed, instance=instance)

    return factory


@pytest.fixture
def make_pool():
    """Factory for resource pools with joins and departure windows.

    ``joins`` entries are either a join time or a ``(time, count)`` pair;
    joined resources continue the ``r<N>`` numbering.  ``leaves`` maps a
    resource id to its ``available_until`` departure time.
    """

    def factory(initial: int = 4, *, joins=(), leaves=None, prefix: str = "r"):
        until = dict(leaves or {})
        pool = ResourcePool()
        for index in range(1, initial + 1):
            rid = f"{prefix}{index}"
            pool.add(Resource(rid, available_until=until.get(rid)))
        counter = initial
        for join in joins:
            time, count = join if isinstance(join, tuple) else (join, 1)
            for _ in range(int(count)):
                counter += 1
                rid = f"{prefix}{counter}"
                pool.add(
                    Resource(
                        rid,
                        available_from=float(time),
                        available_until=until.get(rid),
                    )
                )
        return pool

    return factory


@pytest.fixture
def make_scenario():
    """Factory for registered scenarios, optionally materialised.

    ``make_scenario("churn", interval=100.0)`` returns the scenario
    instance; adding ``initial_size=6`` (plus optional ``seed``/
    ``horizon``) materialises it into a ScenarioRun with a concrete pool
    and performance profile.
    """

    def factory(
        name: str = "static",
        *,
        initial_size=None,
        seed: int = 0,
        horizon: float = 8000.0,
        **params,
    ):
        from repro.scenarios import make_scenario as registry_make
        from repro.scenarios import materialize

        scenario = registry_make(name, **params)
        if initial_size is None:
            return scenario
        return materialize(
            scenario, initial_size=int(initial_size), seed=seed, horizon=horizon
        )

    return factory


@pytest.fixture
def diamond_workflow() -> Workflow:
    """A 4-job diamond DAG: a -> {b, c} -> d."""
    wf = Workflow("diamond")
    for job in ["a", "b", "c", "d"]:
        wf.add_job(job)
    wf.add_edge("a", "b", data=2.0)
    wf.add_edge("a", "c", data=3.0)
    wf.add_edge("b", "d", data=1.0)
    wf.add_edge("c", "d", data=4.0)
    return wf


@pytest.fixture
def diamond_costs(diamond_workflow) -> TabularCostModel:
    """Two-resource tabular cost model for the diamond DAG."""
    return TabularCostModel(
        diamond_workflow,
        {
            "a": {"r1": 2.0, "r2": 4.0},
            "b": {"r1": 3.0, "r2": 2.0},
            "c": {"r1": 5.0, "r2": 4.0},
            "d": {"r1": 2.0, "r2": 3.0},
        },
    )


@pytest.fixture
def chain_workflow() -> Workflow:
    """A 3-job chain: a -> b -> c."""
    wf = Workflow("chain")
    for job in ["a", "b", "c"]:
        wf.add_job(job)
    wf.add_edge("a", "b", data=1.0)
    wf.add_edge("b", "c", data=1.0)
    return wf


@pytest.fixture
def two_resource_pool() -> ResourcePool:
    pool = ResourcePool()
    pool.add(Resource("r1"))
    pool.add(Resource("r2"))
    return pool


@pytest.fixture
def sample_workflow() -> Workflow:
    return sample_dag_workflow()


@pytest.fixture
def sample_costs(sample_workflow) -> TabularCostModel:
    return sample_dag_cost_model(sample_workflow)


@pytest.fixture
def sample_pool() -> ResourcePool:
    return sample_dag_pool()


@pytest.fixture
def small_random_case(make_case):
    """A small (20-job) random priced case, deterministic."""
    return make_case(v=20, out_degree=0.3, seed=123)


@pytest.fixture
def growing_pool(make_pool) -> ResourcePool:
    """Four resources at t=0 plus two joining later."""
    return make_pool(4, joins=(30.0, 60.0))


@pytest.fixture
def change_model() -> ResourceChangeModel:
    return ResourceChangeModel(initial_size=4, interval=25.0, fraction=0.25, max_events=8)
