"""Tests for workflow serialization."""

import json

import networkx as nx
import pytest

from repro.workflow.dag import Workflow
from repro.workflow.serialization import (
    workflow_from_dict,
    workflow_from_json,
    workflow_from_networkx,
    workflow_to_dict,
    workflow_to_dot,
    workflow_to_json,
    workflow_to_networkx,
)


class TestDictRoundTrip:
    def test_round_trip_preserves_structure(self, diamond_workflow):
        rebuilt = workflow_from_dict(workflow_to_dict(diamond_workflow))
        assert rebuilt.name == diamond_workflow.name
        assert rebuilt.jobs == diamond_workflow.jobs
        assert sorted(rebuilt.edges()) == sorted(diamond_workflow.edges())

    def test_round_trip_preserves_operations_and_payload(self):
        wf = Workflow("ops")
        wf.add_job("a", operation="split", index=3)
        wf.add_job("b", operation="merge")
        wf.add_edge("a", "b", data=1.5)
        rebuilt = workflow_from_dict(workflow_to_dict(wf))
        assert rebuilt.job("a").operation == "split"
        assert rebuilt.job("a").payload["index"] == 3

    def test_unknown_version_rejected(self, diamond_workflow):
        payload = workflow_to_dict(diamond_workflow)
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            workflow_from_dict(payload)

    def test_missing_sections_rejected(self):
        with pytest.raises(ValueError):
            workflow_from_dict({"name": "x"})


class TestJson:
    def test_json_round_trip(self, diamond_workflow):
        text = workflow_to_json(diamond_workflow, indent=2)
        rebuilt = workflow_from_json(text)
        assert sorted(rebuilt.edges()) == sorted(diamond_workflow.edges())

    def test_json_is_valid_json(self, diamond_workflow):
        parsed = json.loads(workflow_to_json(diamond_workflow))
        assert parsed["name"] == "diamond"


class TestDot:
    def test_dot_contains_nodes_and_edges(self, diamond_workflow):
        dot = workflow_to_dot(diamond_workflow)
        assert dot.startswith("digraph")
        assert '"a" -> "b"' in dot
        assert '"c" -> "d"' in dot

    def test_dot_without_data_labels(self, diamond_workflow):
        dot = workflow_to_dot(diamond_workflow, include_data=False)
        assert "label=" not in dot.split("\n", 2)[2].split("->")[1]


class TestNetworkx:
    def test_export_preserves_counts(self, diamond_workflow):
        graph = workflow_to_networkx(diamond_workflow)
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 4
        assert graph["a"]["b"]["data"] == 2.0

    def test_networkx_round_trip(self, diamond_workflow):
        graph = workflow_to_networkx(diamond_workflow)
        rebuilt = workflow_from_networkx(graph, name="again")
        assert sorted(rebuilt.edges()) == sorted(diamond_workflow.edges())

    def test_cyclic_graph_rejected(self):
        graph = nx.DiGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "a")
        with pytest.raises(ValueError, match="acyclic"):
            workflow_from_networkx(graph)
