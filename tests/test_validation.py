"""Tests for schedule feasibility validation."""

import pytest

from repro.resources.pool import ResourcePool
from repro.resources.resource import Resource
from repro.scheduling.base import Assignment, Schedule
from repro.scheduling.validation import (
    ScheduleValidationError,
    check_no_overlap,
    check_precedence,
    check_resource_availability,
    validate_schedule,
)


@pytest.fixture
def good_schedule(diamond_workflow, diamond_costs):
    s = Schedule()
    s.add(Assignment("a", "r1", 0.0, 2.0))
    s.add(Assignment("b", "r2", 4.0, 6.0))   # 2 + comm 2 = 4
    s.add(Assignment("c", "r1", 2.0, 7.0))   # local data
    s.add(Assignment("d", "r1", 11.0, 13.0))  # needs b's data: 6 + 1 = 7, c local 7 -> 11 ok
    return s


class TestPrecedence:
    def test_valid_schedule_has_no_violations(self, diamond_workflow, diamond_costs, good_schedule):
        assert check_precedence(diamond_workflow, diamond_costs, good_schedule) == []

    def test_detects_missing_communication_delay(self, diamond_workflow, diamond_costs):
        s = Schedule()
        s.add(Assignment("a", "r1", 0.0, 2.0))
        s.add(Assignment("b", "r2", 2.5, 4.5))  # needs 2 + comm 2 = 4
        problems = check_precedence(diamond_workflow, diamond_costs, s)
        assert len(problems) == 1
        assert "b" in problems[0]

    def test_partial_schedules_only_check_present_jobs(self, diamond_workflow, diamond_costs):
        s = Schedule()
        s.add(Assignment("a", "r1", 0.0, 2.0))
        assert check_precedence(diamond_workflow, diamond_costs, s) == []


class TestOverlap:
    def test_overlap_detected(self):
        s = Schedule()
        s.add(Assignment("a", "r1", 0.0, 5.0))
        s.add(Assignment("b", "r1", 4.0, 9.0))
        assert len(check_no_overlap(s)) == 1

    def test_touching_allowed(self):
        s = Schedule()
        s.add(Assignment("a", "r1", 0.0, 5.0))
        s.add(Assignment("b", "r1", 5.0, 9.0))
        assert check_no_overlap(s) == []


class TestResourceAvailability:
    def test_unknown_resource_flagged(self):
        s = Schedule()
        s.add(Assignment("a", "ghost", 0.0, 5.0))
        pool = ResourcePool([Resource("r1")])
        assert "unknown resource" in check_resource_availability(s, pool)[0]

    def test_start_before_join_flagged(self):
        s = Schedule()
        s.add(Assignment("a", "r1", 0.0, 5.0))
        pool = ResourcePool([Resource("r1", available_from=3.0)])
        problems = check_resource_availability(s, pool)
        assert len(problems) == 1 and "joins" in problems[0]

    def test_finish_after_departure_flagged(self):
        s = Schedule()
        s.add(Assignment("a", "r1", 0.0, 5.0))
        pool = ResourcePool([Resource("r1", available_until=4.0)])
        problems = check_resource_availability(s, pool)
        assert len(problems) == 1 and "leaves" in problems[0]


class TestValidateSchedule:
    def test_complete_valid_schedule_passes(self, diamond_workflow, diamond_costs, good_schedule):
        assert validate_schedule(diamond_workflow, diamond_costs, good_schedule) == []

    def test_missing_job_detected(self, diamond_workflow, diamond_costs, good_schedule):
        incomplete = Schedule()
        incomplete.add(good_schedule.assignment("a"))
        with pytest.raises(ScheduleValidationError, match="not scheduled"):
            validate_schedule(diamond_workflow, diamond_costs, incomplete)

    def test_raise_on_error_false_returns_list(self, diamond_workflow, diamond_costs):
        incomplete = Schedule()
        problems = validate_schedule(
            diamond_workflow, diamond_costs, incomplete, raise_on_error=False
        )
        assert len(problems) == 4  # each diamond job is missing

    def test_pool_check_included_when_pool_given(self, diamond_workflow, diamond_costs, good_schedule):
        pool = ResourcePool([Resource("r1"), Resource("r2", available_from=100.0)])
        with pytest.raises(ScheduleValidationError, match="joins"):
            validate_schedule(diamond_workflow, diamond_costs, good_schedule, pool=pool)
