"""Tests for deterministic RNG stream derivation."""

import numpy as np
import pytest

from repro.utils.rng import RandomSource, derive_seed, spawn_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_different_tokens_differ(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_different_roots_differ(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_token_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_int_and_float_tokens_distinct(self):
        assert derive_seed(0, 1) != derive_seed(0, 1.0)

    def test_bool_distinct_from_int(self):
        assert derive_seed(0, True) != derive_seed(0, 1)

    def test_bytes_token(self):
        assert derive_seed(0, b"x") == derive_seed(0, b"x")

    def test_result_fits_in_63_bits(self):
        for token in range(50):
            seed = derive_seed(7, token)
            assert 0 <= seed < 2**63

    def test_unsupported_token_type_raises(self):
        with pytest.raises(TypeError):
            derive_seed(0, object())


class TestSpawnRng:
    def test_reproducible_stream(self):
        a = spawn_rng(5, "stream").random(10)
        b = spawn_rng(5, "stream").random(10)
        assert np.allclose(a, b)

    def test_independent_streams(self):
        a = spawn_rng(5, "one").random(10)
        b = spawn_rng(5, "two").random(10)
        assert not np.allclose(a, b)


class TestRandomSource:
    def test_named_streams_reproducible(self):
        src = RandomSource(seed=9)
        assert src.rng("x").random() == src.rng("x").random()

    def test_child_namespacing(self):
        src = RandomSource(seed=9)
        child = src.child("sub")
        assert child.rng("x").random() != src.rng("x").random()

    def test_integers_in_range(self):
        src = RandomSource(seed=3)
        for i in range(20):
            value = src.integers(2, 7, "draw", i)
            assert 2 <= value < 7

    def test_choice_picks_member(self):
        src = RandomSource(seed=3)
        options = ["a", "b", "c"]
        assert src.choice(options, "pick") in options

    def test_choice_empty_raises(self):
        src = RandomSource(seed=3)
        with pytest.raises(ValueError):
            src.choice([], "pick")
