"""Contract tests of the ``repro.run`` facade and the uniform registry.

ISSUE 7's API redesign promises one entry point over the four execution
paths.  This suite pins the contract:

* every mode × suitable registry strategy returns a well-formed
  :class:`~repro.facade.RunResult` (schedule/trace/outcomes/decisions/
  metrics views all consistent with the mode),
* mode inference (workload → ``multi``, named strategy → its registered
  kind, otherwise ``adaptive``),
* the error surface (unknown mode, pool+scenario conflict, multi with
  ``costs=``, missing pool, stream into a single-workflow mode),
* the uniform registry (``available``/``make``/``describe``, the
  ``strategy``/``error-model`` aliases, per-domain error types preserved),
* the deprecation shims: legacy runners warn exactly once per process and
  stay bit-identical to the facade (they *are* the facade's ``.raw``).
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro import _deprecation, registry
from repro.core.adaptive import AdaptiveRunResult, run_adaptive, run_static
from repro.facade import MODES, RunResult, run
from repro.generators.random_dag import RandomDAGParameters, generate_random_case
from repro.resources.dynamics import ResourceChangeModel
from repro.scenarios.base import ScenarioError
from repro.simulation.shared_grid import SharedGridExecutor, SharedGridResult
from repro.workload.streams import WorkloadStream, default_tenants


@pytest.fixture(scope="module")
def case():
    params = RandomDAGParameters(v=12, out_degree=0.3, ccr=1.0, beta=0.5)
    return generate_random_case(params, seed=5)


@pytest.fixture(scope="module")
def model():
    return ResourceChangeModel(
        initial_size=4, interval=60.0, fraction=0.3, max_events=3
    )


@pytest.fixture(scope="module")
def stream():
    tenants = default_tenants(2, arrival_rate=0.01, max_arrivals=2, v=6)
    return WorkloadStream(tenants, seed=1, horizon=4000.0)


def _scheduler_names_for(mode: str):
    """Registry strategies that are valid for ``mode``."""
    names = registry.available("scheduler")
    if mode in ("static", "dynamic"):
        return [n for n in names if registry.describe("scheduler", n)["kind"] == mode]
    # adaptive and multi need the reschedule interface
    return [n for n in names if hasattr(registry.make("scheduler", n), "reschedule")]


def _check_single_mode_result(result: RunResult, mode: str, name: str):
    assert isinstance(result, RunResult)
    assert result.mode == mode
    # single-workflow modes surface the runner's display label (e.g.
    # "MaxMin" for the registry key "maxmin"), so compare case-folded
    assert result.strategy.lower().replace("-", "_").replace(" ", "_") in (
        name, name.replace("_", "")
    ) or name.startswith(result.strategy.lower())
    assert result.schedule is not None
    assert result.makespan > 0.0
    assert result.rescheduling_count >= 0
    assert result.outcomes == []
    assert isinstance(result.decisions, list)
    metrics = result.metrics
    assert metrics["mode"] == mode
    assert metrics["makespan"] == result.makespan
    assert "initial_makespan" in metrics and "evaluated_events" in metrics
    assert isinstance(result.raw, AdaptiveRunResult)


@pytest.mark.parametrize("mode", ["static", "adaptive", "dynamic"])
def test_every_registry_strategy_runs_in_its_modes(mode, case, model):
    names = _scheduler_names_for(mode)
    assert names, f"no registry strategies for mode {mode!r}"
    for name in names:
        result = run(
            case.workflow, model.build_pool(), mode=mode, costs=case.costs,
            strategy=name,
        )
        _check_single_mode_result(result, mode, name)


def test_every_reschedule_strategy_runs_in_multi_mode(stream, model):
    for name in _scheduler_names_for("multi"):
        result = run(stream, model.build_pool(), mode="multi", strategy=name)
        assert result.mode == "multi"
        assert result.strategy == name
        assert isinstance(result.raw, SharedGridResult)
        assert result.schedule is None
        assert result.outcomes and result.makespan > 0.0
        assert result.metrics["workflows"] == len(result.outcomes)
        assert result.rescheduling_count == sum(
            o.reschedule_count for o in result.raw.outcomes
        )


def test_mode_inference(case, model, stream):
    assert run(stream, model.build_pool()).mode == "multi"
    pool = model.build_pool()
    assert run(case.workflow, pool, costs=case.costs).mode == "adaptive"
    assert run(case.workflow, pool, costs=case.costs, strategy="heft").mode == "static"
    assert run(case.workflow, pool, costs=case.costs, strategy="minmin").mode == "dynamic"


def test_scenario_and_error_model_by_name(case):
    result = run(
        case.workflow, costs=case.costs, scenario="departures",
        error_model="gaussian", resources=4, seed=3,
    )
    assert result.mode == "adaptive"
    assert result.makespan > 0.0


def test_error_surface(case, model, stream):
    pool = model.build_pool()
    with pytest.raises(ValueError, match="unknown mode"):
        run(case.workflow, pool, mode="turbo", costs=case.costs)
    with pytest.raises(ValueError, match="not both"):
        run(case.workflow, pool, scenario="static", costs=case.costs)
    with pytest.raises(ValueError, match="no pool"):
        run(case.workflow, costs=case.costs)
    with pytest.raises(ValueError, match="costs= is not accepted"):
        run(stream, pool, mode="multi", costs=case.costs)
    with pytest.raises(ValueError, match="single Workflow"):
        run(stream, pool, mode="adaptive", costs=case.costs)
    with pytest.raises(ValueError, match="requires the estimated costs"):
        run(case.workflow, pool, mode="static")
    with pytest.raises(ValueError, match="registered strategy name"):
        run(stream, pool, mode="multi", strategy=repro.AHEFTScheduler())


# ---------------------------------------------------------------------------
# uniform registry


def test_registry_kinds_and_aliases():
    assert registry.available("scheduler") == registry.available("strategy")
    assert registry.available("error_model") == registry.available("error-model")
    assert "aheft" in registry.available("scheduler")
    assert "departures" in registry.available("scenario")
    assert "gaussian" in registry.available("error_model")
    with pytest.raises(KeyError, match="unknown registry kind"):
        registry.available("workflese")


def test_registry_make_and_describe():
    scheduler = registry.make("scheduler", "heft")
    assert scheduler.__class__.__name__ == "HEFTScheduler"
    info = registry.describe("scheduler", "aheft")
    assert info["kind"] == "adaptive" and info["summary"]
    scenario = registry.make("scenario", "churn", interval=200.0)
    assert scenario.params()["interval"] == 200.0
    assert "defaults" in registry.describe("scenario", "churn")
    error_model = registry.make("error_model", "gaussian", magnitude=0.2, seed=9)
    assert error_model.magnitude == 0.2 and error_model.seed == 9
    assert "summary" in registry.describe("error_model", "gaussian")


def test_registry_preserves_per_domain_error_types():
    with pytest.raises(KeyError, match="unknown scheduler"):
        registry.make("scheduler", "nope")
    with pytest.raises(ScenarioError, match="unknown scenario"):
        registry.make("scenario", "nope")
    with pytest.raises(KeyError, match="unknown error model"):
        registry.make("error_model", "nope")


def test_legacy_registry_helpers_still_delegate():
    from repro.scheduling.registry import available_schedulers, make_scheduler
    from repro.scenarios.library import available_scenarios
    from repro.workflow.costs import available_error_models

    assert available_schedulers() == registry.available("scheduler")
    assert available_scenarios() == registry.available("scenario")
    assert available_error_models() == registry.available("error_model")
    assert isinstance(make_scheduler("aheft"), repro.AHEFTScheduler)


# ---------------------------------------------------------------------------
# deprecation shims


def test_legacy_runners_warn_once_and_stay_bit_identical(case, model):
    pool = model.build_pool()
    _deprecation.reset()
    with pytest.warns(DeprecationWarning, match="run_adaptive"):
        legacy = run_adaptive(case.workflow, case.costs, pool)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # a second warning would fail the test
        again = run_adaptive(case.workflow, case.costs, pool)
    assert isinstance(legacy, AdaptiveRunResult)
    facade = run(case.workflow, pool, mode="adaptive", costs=case.costs)
    assert legacy.final_schedule.to_dict() == facade.raw.final_schedule.to_dict()
    assert legacy.makespan == facade.makespan == again.makespan
    _deprecation.reset()
    with pytest.warns(DeprecationWarning, match="run_static"):
        run_static(case.workflow, case.costs, model.build_pool())


def test_deprecation_warnings_point_at_the_callers_file(case, stream, model):
    """Warning provenance: the reported location is the user's call site.

    Regression: ``warn_once`` hard-coded ``stacklevel=3``, which is right
    for entry points warning directly (``SharedGridExecutor.__init__``)
    but attributed the ``run_*`` shims' warnings — which forward through
    the shared ``_shim`` helper, one frame deeper — to the shim module
    instead of the caller.
    """
    _deprecation.reset()
    with pytest.warns(DeprecationWarning, match="run_adaptive") as records:
        run_adaptive(case.workflow, case.costs, model.build_pool())
    (record,) = records.list
    assert record.filename == __file__
    _deprecation.reset()
    with pytest.warns(DeprecationWarning, match="run_static") as records:
        run_static(case.workflow, case.costs, model.build_pool())
    (record,) = records.list
    assert record.filename == __file__
    # the direct (non-forwarded) entry point keeps the default stacklevel
    _deprecation.reset()
    with pytest.warns(DeprecationWarning, match="SharedGridExecutor") as records:
        SharedGridExecutor(stream.arrivals(), model.build_pool())
    (record,) = records.list
    assert record.filename == __file__


def test_direct_shared_grid_construction_warns_but_facade_does_not(stream, model):
    _deprecation.reset()
    with pytest.warns(DeprecationWarning, match="SharedGridExecutor"):
        executor = SharedGridExecutor(stream.arrivals(), model.build_pool())
    _deprecation.reset()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        facade = run(stream, model.build_pool(), mode="multi")
    direct = executor.run()
    assert direct.makespan() == facade.makespan
    assert [o.key for o in direct.outcomes] == [o.key for o in facade.outcomes]


def test_legacy_shim_rejects_strategy_and_scheduler_together(case, model):
    with pytest.raises(ValueError, match="not both"):
        run_adaptive(
            case.workflow, case.costs, model.build_pool(),
            strategy="aheft", scheduler=repro.AHEFTScheduler(),
        )


def test_facade_is_exported_at_package_root():
    assert repro.run is run
    assert repro.RunResult is RunResult
    assert repro.registry is registry
    assert set(MODES) == {"static", "adaptive", "dynamic", "multi"}
