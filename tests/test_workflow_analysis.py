"""Tests for DAG analyses: ranks, critical path, parallelism."""

import pytest

from repro.generators.sample import sample_dag_cost_model, sample_dag_workflow
from repro.workflow.analysis import (
    average_parallelism,
    critical_path,
    critical_path_length,
    dag_levels,
    downward_ranks,
    max_parallelism,
    parallelism_profile,
    upward_ranks,
)
from repro.workflow.costs import UniformCostModel


class TestUpwardRanks:
    def test_exit_rank_equals_average_cost(self, diamond_workflow, diamond_costs):
        ranks = upward_ranks(diamond_workflow, diamond_costs)
        assert ranks["d"] == pytest.approx(
            diamond_costs.average_computation_cost("d")
        )

    def test_rank_monotone_along_edges(self, diamond_workflow, diamond_costs):
        ranks = upward_ranks(diamond_workflow, diamond_costs)
        for src, dst, _ in diamond_workflow.edges():
            assert ranks[src] > ranks[dst]

    def test_classic_sample_rank_order(self):
        """On the classic HEFT example, n1 has the highest rank and n10 the lowest."""
        wf = sample_dag_workflow()
        costs = sample_dag_cost_model(wf)
        ranks = upward_ranks(wf, costs, ["r1", "r2", "r3"])
        ordering = sorted(ranks, key=ranks.get, reverse=True)
        assert ordering[0] == "n1"
        assert ordering[-1] == "n10"
        # the classic value for the entry node with 3 resources is 108
        assert ranks["n1"] == pytest.approx(108.0, abs=0.5)

    def test_restricting_resources_changes_averages(self, diamond_workflow, diamond_costs):
        all_ranks = upward_ranks(diamond_workflow, diamond_costs)
        r1_ranks = upward_ranks(diamond_workflow, diamond_costs, ["r1"])
        assert all_ranks["a"] != r1_ranks["a"]


class TestDownwardRanks:
    def test_entry_rank_zero(self, diamond_workflow, diamond_costs):
        ranks = downward_ranks(diamond_workflow, diamond_costs)
        assert ranks["a"] == 0.0

    def test_monotone_along_edges(self, diamond_workflow, diamond_costs):
        ranks = downward_ranks(diamond_workflow, diamond_costs)
        for src, dst, _ in diamond_workflow.edges():
            assert ranks[dst] > ranks[src]


class TestCriticalPath:
    def test_path_starts_at_entry_ends_at_exit(self, diamond_workflow, diamond_costs):
        path = critical_path(diamond_workflow, diamond_costs)
        assert path[0] == "a"
        assert path[-1] == "d"

    def test_chooses_heavier_branch(self, diamond_workflow, diamond_costs):
        # branch through c has comp 4.5 avg + comm 3 and 4, heavier than b
        path = critical_path(diamond_workflow, diamond_costs)
        assert "c" in path

    def test_length_at_least_sum_of_path_nodes(self, diamond_workflow, diamond_costs):
        length = critical_path_length(diamond_workflow, diamond_costs)
        assert length > 0
        no_comm = critical_path_length(
            diamond_workflow, diamond_costs, include_communication=False
        )
        assert length >= no_comm

    def test_minimum_cost_variant_is_lower_bound(self, diamond_workflow, diamond_costs):
        resources = ["r1", "r2"]
        minimal = critical_path_length(
            diamond_workflow,
            diamond_costs,
            resources,
            include_communication=False,
            minimum_costs=True,
        )
        average = critical_path_length(
            diamond_workflow, diamond_costs, resources, include_communication=False
        )
        assert minimal <= average


class TestParallelism:
    def test_levels(self, diamond_workflow):
        levels = dag_levels(diamond_workflow)
        assert levels == {"a": 0, "b": 1, "c": 1, "d": 2}

    def test_profile(self, diamond_workflow):
        assert parallelism_profile(diamond_workflow) == [1, 2, 1]

    def test_max_and_average(self, diamond_workflow):
        assert max_parallelism(diamond_workflow) == 2
        assert average_parallelism(diamond_workflow) == pytest.approx(4 / 3)

    def test_chain_has_width_one(self, chain_workflow):
        assert max_parallelism(chain_workflow) == 1

    def test_blast_width_matches_parallelism(self):
        from repro.generators.blast import generate_blast_workflow

        wf = generate_blast_workflow(7)
        assert max_parallelism(wf) == 7

    def test_wien2k_fermi_level_has_width_one(self):
        from repro.generators.wien2k import generate_wien2k_workflow

        wf = generate_wien2k_workflow(6)
        profile = parallelism_profile(wf)
        # widths: 1 (stagein), 1 (lapw0), 6 (lapw1), 1 (fermi), 6 (lapw2), then the tail
        assert profile[2] == 6
        assert profile[3] == 1
        assert profile[4] == 6


class TestIncrementalRankCache:
    """Dirty-cone rank maintenance must be invisible to callers.

    When only edge data volumes changed between two ``upward_ranks`` calls,
    the cached rank vector is patched in place by re-ranking the cone
    upstream of the changed edges.  The patched ranks must be bit-identical
    to a cold full recompute in every case.
    """

    def _random_case(self, v=60, seed=0):
        from repro.generators.random_dag import (
            RandomDAGParameters,
            generate_random_case,
        )

        params = RandomDAGParameters(
            v=v, out_degree=0.2, ccr=1.0, beta=0.5, omega_dag=300.0
        )
        return generate_random_case(params, seed=seed)

    def _cold_ranks(self, workflow, costs, resources):
        from repro.workflow.analysis import _RANK_CACHE

        _RANK_CACHE.pop(costs, None)
        return upward_ranks(workflow, costs, resources)

    def test_incremental_equals_full_after_data_edits(self):
        from repro.workflow.analysis import _RANK_CACHE

        resources = [f"r{i + 1}" for i in range(8)]
        for seed in (0, 2, 5):
            case = self._random_case(seed=seed)
            wf, costs = case.workflow, case.costs
            upward_ranks(wf, costs, resources)  # prime the cache
            cached = _RANK_CACHE[costs]["rank"]
            edges = wf.edges()
            for k, (src, dst, data) in enumerate(edges):
                if k % 7 == 0:
                    wf.set_data(src, dst, data * 3.0 + 1.0)
            incremental = upward_ranks(wf, costs, resources)
            # the cached storage was patched, not rebuilt
            assert _RANK_CACHE[costs]["rank"] is cached
            full = self._cold_ranks(wf, costs, resources)
            assert incremental == full

    def test_repeated_edits_stay_exact(self):
        resources = [f"r{i + 1}" for i in range(5)]
        case = self._random_case(v=40, seed=3)
        wf, costs = case.workflow, case.costs
        edges = wf.edges()
        upward_ranks(wf, costs, resources)
        for round_no in range(4):
            for k, (src, dst, data) in enumerate(edges):
                if k % 5 == round_no % 5:
                    wf.set_data(src, dst, data * (0.5 + round_no))
            incremental = upward_ranks(wf, costs, resources)
            assert incremental == self._cold_ranks(wf, costs, resources)
            upward_ranks(wf, costs, resources)  # re-prime after cold pop

    def test_resources_change_misses_the_cache(self):
        case = self._random_case(v=30, seed=1)
        wf, costs = case.workflow, case.costs
        pool_a = [f"r{i + 1}" for i in range(6)]
        pool_b = pool_a + ["g1", "g2"]
        ranks_a = upward_ranks(wf, costs, pool_a)
        ranks_b = upward_ranks(wf, costs, pool_b)
        assert ranks_a != ranks_b
        assert ranks_b == self._cold_ranks(wf, costs, pool_b)
        assert upward_ranks(wf, costs, None) == self._cold_ranks(wf, costs, None)

    def test_structural_mutation_falls_back_to_full(self):
        case = self._random_case(v=25, seed=4)
        wf, costs = case.workflow, case.costs
        resources = ["r1", "r2", "r3"]
        upward_ranks(wf, costs, resources)
        entry = wf.entry_jobs()[0]
        wf.add_job("straggler")
        wf.add_edge(entry, "straggler", data=5.0)
        costs.base_costs["straggler"] = 80.0
        costs.invalidate_cache()
        after = upward_ranks(wf, costs, resources)
        assert "straggler" in after
        assert after == self._cold_ranks(wf, costs, resources)

    def test_returned_dicts_are_fresh_objects(self):
        case = self._random_case(v=20, seed=6)
        wf, costs = case.workflow, case.costs
        resources = ["r1", "r2"]
        first = upward_ranks(wf, costs, resources)
        first[next(iter(first))] = -1.0  # caller mutates its copy
        second = upward_ranks(wf, costs, resources)
        assert second == self._cold_ranks(wf, costs, resources)

    def test_priority_order_tracks_data_edits(self):
        from repro.scheduling.heft import heft_priority_order

        case = self._random_case(v=35, seed=7)
        wf, costs = case.workflow, case.costs
        resources = [f"r{i + 1}" for i in range(4)]
        heft_priority_order(wf, costs, resources)
        for src, dst, data in wf.edges()[::4]:
            wf.set_data(src, dst, data * 10.0 + 2.0)
        ranks = self._cold_ranks(wf, costs, resources)
        order = heft_priority_order(wf, costs, resources)
        values = [ranks[j] for j in order]
        assert values == sorted(values, reverse=True)
