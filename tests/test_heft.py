"""Tests for the static HEFT baseline, including the paper's worked example."""

import pytest

from repro.generators.sample import sample_dag_cost_model, sample_dag_workflow
from repro.scheduling.heft import HEFTScheduler, heft_priority_order, heft_schedule
from repro.scheduling.validation import validate_schedule


class TestPriorityOrder:
    def test_topologically_consistent(self, small_random_case):
        wf = small_random_case.workflow
        costs = small_random_case.costs
        order = heft_priority_order(wf, costs, ["r1", "r2"])
        index = {job: i for i, job in enumerate(order)}
        for src, dst, _ in wf.edges():
            assert index[src] < index[dst]

    def test_classic_order_starts_with_entry(self, sample_workflow, sample_costs):
        order = heft_priority_order(sample_workflow, sample_costs, ["r1", "r2", "r3"])
        assert order[0] == "n1"
        assert order[-1] == "n10"


class TestClassicExample:
    """The paper's Fig. 5(a): HEFT on the sample DAG has makespan 80."""

    def test_makespan_is_80(self, sample_workflow, sample_costs):
        schedule = heft_schedule(sample_workflow, sample_costs, ["r1", "r2", "r3"])
        assert schedule.makespan() == pytest.approx(80.0)

    def test_known_placements(self, sample_workflow, sample_costs):
        schedule = heft_schedule(sample_workflow, sample_costs, ["r1", "r2", "r3"])
        assert schedule.resource_of("n1") == "r3"
        assert schedule.assignment("n1").finish == pytest.approx(9.0)
        assert schedule.resource_of("n10") == "r2"
        assert schedule.assignment("n10").start == pytest.approx(73.0)

    def test_schedule_is_feasible(self, sample_workflow, sample_costs):
        schedule = heft_schedule(sample_workflow, sample_costs, ["r1", "r2", "r3"])
        assert validate_schedule(sample_workflow, sample_costs, schedule) == []

    def test_four_resources_from_start_stays_feasible(self, sample_workflow, sample_costs):
        """HEFT is a heuristic: a fourth resource shifts the averages and may
        even lengthen its schedule; the result must simply remain feasible."""
        with_r4 = heft_schedule(sample_workflow, sample_costs, ["r1", "r2", "r3", "r4"])
        assert with_r4.makespan() > 0
        assert validate_schedule(sample_workflow, sample_costs, with_r4) == []


class TestGeneralBehaviour:
    def test_all_jobs_scheduled(self, small_random_case):
        schedule = heft_schedule(
            small_random_case.workflow, small_random_case.costs, ["r1", "r2", "r3"]
        )
        assert len(schedule) == small_random_case.workflow.num_jobs

    def test_empty_resource_set_rejected(self, diamond_workflow, diamond_costs):
        with pytest.raises(ValueError):
            heft_schedule(diamond_workflow, diamond_costs, [])

    def test_single_resource_serialises_all_jobs(self, diamond_workflow, diamond_costs):
        schedule = heft_schedule(diamond_workflow, diamond_costs, ["r1"])
        total = sum(diamond_costs.computation_cost(j, "r1") for j in diamond_workflow.jobs)
        assert schedule.makespan() == pytest.approx(total)

    def test_more_resources_never_hurt_diamond(self, diamond_workflow, diamond_costs):
        one = heft_schedule(diamond_workflow, diamond_costs, ["r1"])
        two = heft_schedule(diamond_workflow, diamond_costs, ["r1", "r2"])
        assert two.makespan() <= one.makespan()

    def test_insertion_never_worse_than_append(self, small_random_case):
        wf, costs = small_random_case.workflow, small_random_case.costs
        resources = ["r1", "r2", "r3", "r4"]
        with_insertion = heft_schedule(wf, costs, resources, insertion=True)
        without = heft_schedule(wf, costs, resources, insertion=False)
        assert with_insertion.makespan() <= without.makespan() + 1e-9

    def test_resource_available_from_delays_start(self, diamond_workflow, diamond_costs):
        schedule = heft_schedule(
            diamond_workflow,
            diamond_costs,
            ["r1", "r2"],
            resource_available_from={"r1": 50.0, "r2": 50.0},
        )
        assert min(a.start for a in schedule) >= 50.0

    def test_deterministic(self, small_random_case):
        wf, costs = small_random_case.workflow, small_random_case.costs
        first = heft_schedule(wf, costs, ["r1", "r2", "r3"])
        second = heft_schedule(wf, costs, ["r1", "r2", "r3"])
        assert first.to_dict() == second.to_dict()

    def test_scheduler_wrapper(self, diamond_workflow, diamond_costs):
        scheduler = HEFTScheduler()
        schedule = scheduler.schedule(diamond_workflow, diamond_costs, ["r1", "r2"])
        assert schedule.name == "HEFT"
        assert len(schedule) == 4
