"""End-to-end integration tests tying the whole system together."""

import pytest

from repro.core.adaptive import run_adaptive, run_dynamic, run_static
from repro.generators.blast import generate_blast_case
from repro.generators.sample import sample_dag_cost_model, sample_dag_pool, sample_dag_workflow
from repro.generators.wien2k import generate_wien2k_case
from repro.resources.dynamics import ResourceChangeModel
from repro.resources.reservation import ReservationBook
from repro.scheduling.validation import validate_schedule
from repro.simulation.executor import StaticScheduleExecutor
from repro.simulation.trace import render_gantt


class TestWorkedExample:
    """The paper's Fig. 4/5 scenario end to end."""

    def test_heft_baseline_is_80(self):
        wf = sample_dag_workflow()
        costs = sample_dag_cost_model(wf)
        pool = sample_dag_pool()
        static = run_static(wf, costs, pool)
        assert static.makespan == pytest.approx(80.0)

    def test_adaptive_run_is_never_worse_and_feasible(self):
        wf = sample_dag_workflow()
        costs = sample_dag_cost_model(wf)
        pool = sample_dag_pool()
        adaptive = run_adaptive(wf, costs, pool)
        assert adaptive.makespan <= 80.0 + 1e-9
        assert validate_schedule(wf, costs, adaptive.final_schedule, pool=pool) == []
        # exactly one event (r4 at t=15) is evaluated before the DAG finishes
        assert adaptive.evaluated_events == 1

    def test_final_schedule_replays_identically_on_the_simulator(self):
        wf = sample_dag_workflow()
        costs = sample_dag_cost_model(wf)
        pool = sample_dag_pool()
        adaptive = run_adaptive(wf, costs, pool)
        trace = StaticScheduleExecutor(wf, costs, adaptive.final_schedule, pool).run()
        assert trace.makespan() == pytest.approx(adaptive.makespan)


class TestApplicationScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        case = generate_blast_case(30, ccr=2.0, beta=0.5, omega_dag=200.0, seed=17)
        pool = ResourceChangeModel(initial_size=5, interval=300.0, fraction=0.3).build_pool()
        return case, pool

    def test_three_strategy_comparison_matches_paper_ordering(self, scenario):
        case, pool = scenario
        heft = run_static(case.workflow, case.costs, pool)
        aheft = run_adaptive(case.workflow, case.costs, pool)
        minmin = run_dynamic(case.workflow, case.costs, pool)
        # the paper's ordering: AHEFT <= HEFT, and plan-ahead beats just-in-time
        assert aheft.makespan <= heft.makespan + 1e-9
        assert minmin.makespan >= aheft.makespan

    def test_adaptive_final_schedule_respects_join_times(self, scenario):
        case, pool = scenario
        aheft = run_adaptive(case.workflow, case.costs, pool)
        assert validate_schedule(case.workflow, case.costs, aheft.final_schedule, pool=pool) == []

    def test_adaptive_schedule_replays_on_simulator(self, scenario):
        case, pool = scenario
        aheft = run_adaptive(case.workflow, case.costs, pool)
        trace = StaticScheduleExecutor(case.workflow, case.costs, aheft.final_schedule, pool).run()
        assert trace.makespan() == pytest.approx(aheft.makespan, rel=1e-9)

    def test_reservations_for_final_schedule_have_no_conflicts(self, scenario):
        case, pool = scenario
        aheft = run_adaptive(case.workflow, case.costs, pool)
        book = ReservationBook()
        book.reserve_schedule(
            [
                (a.job_id, a.resource_id, a.start, a.finish)
                for a in aheft.final_schedule
            ],
            plan_id="final",
        )
        assert not book.has_conflicts()

    def test_gantt_rendering_smoke(self, scenario):
        case, pool = scenario
        aheft = run_adaptive(case.workflow, case.costs, pool)
        text = render_gantt(aheft.final_schedule, width=60)
        assert "|" in text


class TestBlastVersusWien2k:
    def test_blast_benefits_at_least_as_much_as_wien2k(self):
        """Qualitative reproduction of the paper's §4.3 observation.

        With the same cost scale, pool and dynamics, the wide, well-balanced
        BLAST DAG gains at least as much from adaptive rescheduling as the
        WIEN2K DAG whose LAPW2_FERMI job throttles parallelism.
        """
        improvements = {}
        for name, generator in (("blast", generate_blast_case), ("wien2k", generate_wien2k_case)):
            case = generator(40, ccr=1.0, beta=0.5, omega_dag=200.0, seed=31)
            pool = ResourceChangeModel(initial_size=8, interval=400.0, fraction=0.15).build_pool()
            heft = run_static(case.workflow, case.costs, pool)
            aheft = run_adaptive(case.workflow, case.costs, pool)
            improvements[name] = (heft.makespan - aheft.makespan) / heft.makespan
        assert improvements["blast"] >= improvements["wien2k"] - 0.02
        assert improvements["blast"] > 0
