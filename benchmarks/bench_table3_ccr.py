"""Table 3 — AHEFT improvement over HEFT vs CCR on random DAGs.

Paper: 0.4%, 0.5%, 0.7%, 3.2%, 7.7% for CCR = 0.1, 0.5, 1, 5, 10 — the
improvement grows with data intensiveness.
"""

from _common import CCR_VALUES, INSTANCES, WORKERS, base_random_config, publish, run_once

from repro.experiments.reporting import render_improvement_table
from repro.experiments.sweep import sweep_random_parameter

PAPER_ROW = {0.1: 0.4, 0.5: 0.5, 1.0: 0.7, 5.0: 3.2, 10.0: 7.7}


def _experiment():
    return sweep_random_parameter(
        "ccr",
        list(CCR_VALUES),
        base_config=base_random_config(),
        instances=max(INSTANCES, 2),
        strategies=("HEFT", "AHEFT"),
        seed=30,
        workers=WORKERS,
    )


def test_table3_improvement_vs_ccr(benchmark):
    points = run_once(benchmark, _experiment)
    table = render_improvement_table(points, title="Table 3: improvement rate vs CCR")
    paper_line = "paper:       " + "  ".join(
        f"{PAPER_ROW[point.value]:.1f}%" for point in points
    )
    publish("table3_ccr", table + "\n" + paper_line)
    # AHEFT never loses to HEFT at any CCR.  (The paper additionally reports
    # the improvement *growing* with CCR on random DAGs; with our bandwidth
    # calibration the trend on random DAGs is flat-to-decreasing — see
    # EXPERIMENTS.md for the discussion.  The application-level CCR trend of
    # Table 8 is reproduced.)
    improvements = [point.improvement() for point in points]
    assert all(rate >= -1e-9 for rate in improvements)
