"""§4.2 random-DAG comparison — HEFT vs AHEFT vs dynamic Min-Min.

Paper (averaged over 500,000 cases of the Table 2 grid):
HEFT 4075, AHEFT 3911, Min-Min 12352.  The benchmark samples the same grid
(deterministically) at laptop scale and reports the same three averages.
"""

from _common import SCALE, WORKERS, publish, run_once

from repro.experiments.config import sample_random_grid
from repro.experiments.metrics import average
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentCase, run_case_batch

NUM_CASES = 40 if SCALE == "paper" else 8


def _experiment():
    configs = [cfg for cfg in sample_random_grid(NUM_CASES, seed=20) if cfg.v <= 100]
    experiments = [
        ExperimentCase(config.build_case(), config.build_resource_model())
        for config in configs
    ]
    return run_case_batch(
        experiments, strategies=("HEFT", "AHEFT", "MinMin"), workers=WORKERS
    )


def test_table2_random_comparison(benchmark):
    results = run_once(benchmark, _experiment)
    means = {
        strategy: average(result.makespans[strategy] for result in results)
        for strategy in ("HEFT", "AHEFT", "MinMin")
    }
    paper = {"HEFT": 4075.0, "AHEFT": 3911.0, "MinMin": 12352.0}
    rows = [
        [strategy, paper[strategy], means[strategy]]
        for strategy in ("HEFT", "AHEFT", "MinMin")
    ]
    table = format_table(["strategy", "paper avg makespan", "measured avg makespan"], rows)
    table += f"\ncases: {len(results)}"
    publish("table2_random_comparison", table)
    # the paper's ordering must hold: AHEFT <= HEFT < Min-Min
    assert means["AHEFT"] <= means["HEFT"] + 1e-9
    assert means["MinMin"] > means["HEFT"]
