"""Table 8 — improvement rate vs CCR for BLAST and WIEN2K.

Paper: BLAST 16.1%, 15.5%, 14.3%, 19.1%, 26.1% and WIEN2K 7.3%, 7.3%, 6.6%,
5.3%, 6.4% for CCR = 0.1 … 10 — BLAST's improvement rises for very
data-intensive workloads while WIEN2K stays roughly flat.
"""

from _common import CCR_VALUES, application_series, publish, run_once

from repro.experiments.reporting import render_improvement_table

PAPER = {
    "BLAST": (16.1, 15.5, 14.3, 19.1, 26.1),
    "WIEN2K": (7.3, 7.3, 6.6, 5.3, 6.4),
}


def _experiment():
    return application_series("ccr", CCR_VALUES, seed=42)


def test_table8_improvement_vs_ccr(benchmark):
    series = run_once(benchmark, _experiment)
    blocks = []
    for label, points in series.items():
        block = render_improvement_table(
            points, title=f"Table 8 ({label}): improvement rate vs CCR"
        )
        block += "\npaper:       " + "  ".join(f"{v:.1f}%" for v in PAPER[label])
        blocks.append(block)
    publish("table8_app_ccr", "\n\n".join(blocks))
    for points in series.values():
        assert all(point.improvement() >= -1e-9 for point in points)
