"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at laptop
scale.  The paper's full grids (500,000 random cases, 1000-way parallelism)
are far beyond a single benchmark run, so each benchmark:

* sweeps the same parameter the paper sweeps,
* uses a scaled-down value set and instance count by default,
* honours ``REPRO_BENCH_SCALE=paper`` to run the paper-sized values
  (slow — minutes to hours), and
* prints the resulting rows and writes them to ``benchmarks/results/``
  so they can be compared against the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path
from typing import Mapping, Optional, Sequence

from repro.experiments.config import (
    ApplicationExperimentConfig,
    RandomExperimentConfig,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: "laptop" (default) or "paper"
SCALE = os.environ.get("REPRO_BENCH_SCALE", "laptop")

def _parse_workers(raw: str) -> Optional[int]:
    try:
        count = int(raw)
    except ValueError:
        print(
            f"REPRO_BENCH_WORKERS={raw!r} is not an integer; running serially",
            file=sys.stderr,
        )
        return None
    return count if count > 1 else None


#: Opt-in parallelism for the case runners (unset/0/1/garbage = serial).
WORKERS = _parse_workers(os.environ.get("REPRO_BENCH_WORKERS", "0"))

#: Number of generated instances averaged per sweep point.
INSTANCES = 3 if SCALE == "paper" else 1

#: Parallelism values for the application sweeps (paper: 200..1000).
APP_PARALLELISM = (200, 400, 600, 800, 1000) if SCALE == "paper" else (40, 80, 120, 160, 200)

#: Job-count values for the random-DAG sweeps (paper Table 2).
RANDOM_V = (20, 40, 60, 80, 100)

#: CCR values (paper Tables 2/5).
CCR_VALUES = (0.1, 0.5, 1.0, 5.0, 10.0)

#: Heterogeneity values (paper Tables 2/5).
BETA_VALUES = (0.1, 0.25, 0.5, 0.75, 1.0)

#: Initial pool sizes for application experiments (paper: 20..100).
APP_POOL_SIZES = (20, 40, 60, 80, 100) if SCALE == "paper" else (10, 20, 30, 40, 50)

#: Resource-change intervals Δ (paper Tables 2/5).
INTERVALS = (400.0, 800.0, 1200.0, 1600.0)

#: Resource-change fractions δ (paper Tables 2/5).
FRACTIONS = (0.10, 0.15, 0.20, 0.25)

#: Default application parallelism when it is not the swept parameter.
DEFAULT_APP_PARALLELISM = 400 if SCALE == "paper" else 100


def base_random_config(**overrides) -> RandomExperimentConfig:
    """Default random-DAG configuration used when a parameter is not swept."""
    defaults = dict(v=60, ccr=1.0, out_degree=0.2, beta=0.5,
                    resources=10, interval=400.0, fraction=0.15)
    defaults.update(overrides)
    return RandomExperimentConfig(**defaults)


def base_application_config(application: str, **overrides) -> ApplicationExperimentConfig:
    """Default application configuration used when a parameter is not swept."""
    defaults = dict(application=application, parallelism=DEFAULT_APP_PARALLELISM,
                    ccr=1.0, beta=0.5, resources=20, interval=400.0, fraction=0.15)
    defaults.update(overrides)
    return ApplicationExperimentConfig(**defaults)


def application_series(parameter: str, values: Sequence, *, seed: int = 0,
                       applications: Sequence[str] = ("blast", "wien2k")):
    """Sweep one parameter for each application; returns {label: [SweepPoint]}.

    This is the common core of Tables 7/8 and every Fig. 8 panel: the same
    parameter is swept for BLAST and WIEN2K under identical dynamics, and
    the per-value average makespans of HEFT and AHEFT are collected.
    """
    from repro.experiments.sweep import sweep_application_parameter

    series = {}
    for application in applications:
        points = sweep_application_parameter(
            application,
            parameter,
            list(values),
            base_config=base_application_config(application),
            instances=INSTANCES,
            strategies=("HEFT", "AHEFT"),
            seed=seed,
            workers=WORKERS,
        )
        series[application.upper()] = points
    return series


def publish(name: str, text: str, data: Optional[Mapping] = None) -> None:
    """Print a benchmark's table and persist it under benchmarks/results/.

    Every benchmark's output is written twice: the human-readable table as
    ``results/<name>.txt`` and a machine-readable ``results/<name>.json``
    (name, scale and the table lines, merged with the optional structured
    ``data`` mapping) so the result trajectory can be tracked across PRs.
    """
    print()
    print(f"### {name} (scale={SCALE}) ###")
    print(text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    payload = {"name": name, "scale": SCALE, "lines": text.splitlines()}
    if data is not None:
        payload.update(data)
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
