"""Uncertainty matrix: strategy robustness vs estimate-error magnitude.

The paper's adaptive architecture exists because execution-time estimates
are inaccurate, yet its headline experiments assume they are perfect.
This benchmark runs the Monte Carlo uncertainty engine instead: every
cell replays the same workloads under sampled ground-truth runtimes
(scheduler plans on estimates, executors run the truth), replicated with
independent draws, and reports mean±CI95 achieved makespans plus the
improvement rate of AHEFT over static HEFT.

Two error families anchor the matrix:

* ``resource_bias`` — systematic per-resource mis-estimation, the
  structure the Predictor/Performance-History loop can actually learn.
  The paper's qualitative claim shows up here: AHEFT's improvement over
  HEFT grows monotonically with the error magnitude (asserted below and
  pinned by the committed CI baseline).
* ``gaussian`` — independent zero-mean noise, the unlearnable control:
  improvements hover near the accurate-estimation level, demonstrating
  that the feedback loop does not chase noise.

The same sweep is runnable from the CLI (``repro mc --error-model …``);
CI generates the quick ledger with ``repro mc --quick`` and gates it
against ``benchmarks/baselines/uncertainty_smoke.json`` via ``repro
compare``.  Run directly (``python benchmarks/bench_uncertainty.py
[--quick]``) or via pytest.
"""

from __future__ import annotations

import sys

from _common import WORKERS, publish, run_once

from repro.experiments.config import RandomExperimentConfig
from repro.experiments.reporting import render_uncertainty_matrix
from repro.experiments.uncertainty import sweep_uncertainty

#: (family, magnitudes) — resource_bias carries the monotone-trend claim
ERROR_GRID = (
    ("resource_bias", (0.0, 0.2, 0.4, 0.6)),
    ("gaussian", (0.0, 0.2, 0.4)),
    ("stragglers", (0.0, 0.1, 0.2)),
)


def run_matrix(*, quick: bool = False):
    base = RandomExperimentConfig(
        v=24 if quick else 40,
        resources=8 if quick else 10,
        seed=0,
    )
    all_points = []
    for family, magnitudes in ERROR_GRID:
        all_points.extend(
            sweep_uncertainty(
                magnitudes,
                error_model=family,
                scenarios=("paper",),
                strategies=("HEFT", "AHEFT"),
                base_config=base,
                instances=1 if quick else 2,
                replications=3 if quick else 5,
                seed=0,
                workers=WORKERS,
            )
        )
    text = render_uncertainty_matrix(
        all_points,
        strategies=("HEFT", "AHEFT"),
        title="Makespan under stochastic ground-truth runtimes",
    )
    publish(
        "uncertainty",
        text,
        {"points": [point.as_dict() for point in all_points]},
    )
    return all_points


def test_uncertainty_matrix(benchmark):
    points = run_once(benchmark, lambda: run_matrix(quick=True))
    bias_rows = [p for p in points if p.error_model == "resource_bias"]
    assert len(bias_rows) >= 3
    # the paper's qualitative claim: AHEFT's improvement over HEFT grows
    # with estimate error when the error has learnable structure
    improvements = [p.improvement for p in bias_rows]
    assert improvements == sorted(improvements), improvements
    assert improvements[-1] > improvements[0] + 0.01
    # zero-magnitude cells degenerate to the accurate-estimation regime:
    # both strategies achieve their planned makespans exactly, so every
    # replication reports the same value (CI width collapses to zero)
    for point in points:
        if point.magnitude == 0:
            for stat in point.stats.values():
                assert stat.maximum == stat.minimum
    # the unlearnable control must not collapse: gaussian noise leaves
    # AHEFT within a few percent of HEFT at every magnitude
    for point in points:
        if point.error_model == "gaussian":
            assert point.improvement > -0.10


if __name__ == "__main__":
    run_matrix(quick="--quick" in sys.argv)
