"""Scheduling-kernel throughput: fast kernel vs the frozen seed kernel.

Unlike the other benchmarks (which regenerate paper tables), this one
measures the *scheduler inner loop itself* — the cost that dominates every
sweep:

* static HEFT throughput (jobs placed per second) at V = 100 / 300 / 1000
  on a 20-resource pool,
* adaptive AHEFT latency over a 10-event growing pool (the paper's
  per-event rescheduling pattern),
* the **sparse scaling series** (ISSUE 10): a bounded-degree DAG family
  (expected out-degree ≈ 20/V, so |E| grows linearly) at V = 1k / 10k /
  100k, measuring warm static HEFT time and per-event reschedule latency
  on the fast kernel alone, with a fitted log–log scaling exponent.

Both are run on the fast kernel (indexed DAG/cost caches, bisect timelines,
rank reuse, hoisted inner loops) and on the seed implementation preserved in
:mod:`repro.scheduling._seed_reference`, asserting

* the schedules are **bit-identical** (same assignments, same makespans),
* the fast kernel is ≥5× faster on 1000-job static HEFT and ≥3× faster on
  the 10-event adaptive run.

It also gates the shared discrete-event core (ISSUE 7): heap dispatch in
:class:`repro.simulation.event_core.EventCore` must account for ≤10% of the
1000-job adaptive run's wall clock (``event_core_overhead``).

Results go to ``benchmarks/results/kernel_scaling.{txt,json}`` and to a
top-level ``BENCH_kernel.json`` so the performance trajectory is tracked
across PRs.  Run directly (``python benchmarks/bench_kernel_scaling.py
[--quick]``) or via pytest.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np
from _common import publish, run_once

from repro.facade import run as facade_run
from repro.generators.random_dag import (
    RandomDAGParameters,
    generate_random_case,
    generate_random_dag,
)
from repro.resources.dynamics import ResourceChangeModel
from repro.scheduling._seed_reference import (
    SeedAHEFTScheduler,
    seed_heft_schedule,
)
from repro.scheduling.aheft import AHEFTScheduler
from repro.scheduling.heft import heft_schedule
from repro.simulation.event_core import EventCore
from repro.utils.rng import spawn_rng
from repro.workflow.costs import TabularCostModel

REPO_ROOT = Path(__file__).resolve().parent.parent

#: DAG sizes for the static-HEFT throughput series.
HEFT_SIZES = (100, 300, 1000)
HEFT_POOL = 20

#: Adaptive-run configuration: 10 pool-growth events.
AHEFT_V = 300
AHEFT_EVENTS = 10

#: Acceptance thresholds (ISSUE 1): the fast kernel must beat the seed by
#: at least this much.
MIN_HEFT_SPEEDUP_AT_1000 = 5.0
MIN_AHEFT_SPEEDUP = 3.0

#: Acceptance threshold (ISSUE 7): heap dispatch of the shared event core
#: must stay within this fraction of total adaptive-run wall clock.
MAX_EVENT_CORE_OVERHEAD = 0.10

#: Event-core overhead is probed on the largest adaptive case.
OVERHEAD_V = 1000

#: Sparse scaling series (ISSUE 10): bounded-degree family, |E| ≈ 10·V.
SCALING_SIZES = (1000, 10_000, 100_000)
SCALING_SIZES_QUICK = (300, 1000, 3000)
SCALING_POOL = 20
SCALING_SEED = 13
SCALING_EVENTS = 5

#: Ceiling on the fitted log–log exponent of warm static HEFT time vs V —
#: the kernel must stay near-linear on the bounded-degree family (gap
#: bookkeeping or rank maintenance going quadratic fails here long before
#: a wall-clock regression is noticeable at small V).
MAX_SCALING_EXPONENT = 1.35

#: Reschedule-latency floor (ISSUE 10 acceptance): the pre-change fast
#: kernel measured 1.2758 s per evaluated event at V=10k on this exact
#: family/seed (5 pool events, initial schedule included); the dirty-cone
#: kernel must beat it by at least 5×.
REFERENCE_RESCHEDULE_LATENCY_10K = 1.2758
MIN_RESCHEDULE_SPEEDUP_VS_REFERENCE = 5.0


def _best_of(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best wall-clock time of ``repeats`` runs (dense caches stay warm)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


def _random_case(v: int, seed: int):
    params = RandomDAGParameters(
        v=v, out_degree=0.2, ccr=1.0, beta=0.5, omega_dag=300.0
    )
    return generate_random_case(params, seed=seed)


def _warm_cost_draws(workflow, costs, resources) -> None:
    """Materialise the lazy per-(job, resource) draws for both kernels.

    The heterogeneous model prices pairs on demand with a seeded RNG; that
    one-off cost is identical for both kernels, so it is excluded from the
    comparison.
    """
    for job in workflow.jobs:
        for rid in resources:
            costs.computation_cost(job, rid)


def measure_static_heft(sizes=HEFT_SIZES) -> List[Dict[str, float]]:
    rows: List[Dict[str, float]] = []
    for v in sizes:
        case = _random_case(v, seed=7)
        workflow, costs = case.workflow, case.costs
        resources = [f"r{i + 1}" for i in range(HEFT_POOL)]
        _warm_cost_draws(workflow, costs, resources)
        seed_time = _best_of(lambda: seed_heft_schedule(workflow, costs, resources))
        fast_cold = _best_of(
            lambda: heft_schedule(workflow, costs, resources), repeats=1
        )
        fast_time = _best_of(lambda: heft_schedule(workflow, costs, resources))
        fast = heft_schedule(workflow, costs, resources)
        seed = seed_heft_schedule(workflow, costs, resources)
        if fast.to_dict() != seed.to_dict():
            raise AssertionError(f"fast kernel diverged from seed kernel at V={v}")
        rows.append(
            {
                "v": v,
                "resources": HEFT_POOL,
                "seed_seconds": seed_time,
                "fast_cold_seconds": fast_cold,
                "fast_seconds": fast_time,
                "speedup": seed_time / fast_time,
                "seed_jobs_per_sec": v / seed_time,
                "fast_jobs_per_sec": v / fast_time,
                "makespan": fast.makespan(),
            }
        )
    return rows


def measure_adaptive_aheft(v: int = AHEFT_V, events: int = AHEFT_EVENTS) -> Dict[str, float]:
    case = _random_case(v, seed=3)
    workflow, costs = case.workflow, case.costs
    model = ResourceChangeModel(
        initial_size=10, interval=120.0, fraction=0.15, max_events=events
    )
    pool = model.build_pool()
    _warm_cost_draws(workflow, costs, pool.available_at(float("inf")))

    def adaptive(scheduler):
        return facade_run(
            workflow, pool, mode="adaptive", costs=costs, strategy=scheduler
        ).raw

    seed_time = _best_of(lambda: adaptive(SeedAHEFTScheduler()), repeats=2)
    fast_time = _best_of(lambda: adaptive(AHEFTScheduler()), repeats=3)
    fast = adaptive(AHEFTScheduler())
    seed = adaptive(SeedAHEFTScheduler())
    if fast.final_schedule.to_dict() != seed.final_schedule.to_dict():
        raise AssertionError("adaptive fast kernel diverged from seed kernel")
    if fast.makespan != seed.makespan:
        raise AssertionError("adaptive makespans diverged")
    evaluated = max(fast.evaluated_events, 1)
    return {
        "v": v,
        "pool_events": events,
        "events_evaluated": fast.evaluated_events,
        "seed_seconds": seed_time,
        "fast_seconds": fast_time,
        "speedup": seed_time / fast_time,
        "seed_reschedule_latency": seed_time / evaluated,
        "fast_reschedule_latency": fast_time / evaluated,
        "makespan": fast.makespan,
    }


def scaling_case(v: int, seed: int = SCALING_SEED):
    """A priced sparse DAG: expected out-degree 20/V keeps |E| ≈ 10·V.

    Pricing is vectorised (one tabular draw per (job, resource) pair and
    one per edge) so DAG construction does not drown the kernel
    measurement at V = 100k.
    """
    t0 = time.perf_counter()
    params = RandomDAGParameters(
        v=v, out_degree=min(1.0, 20.0 / v), ccr=1.0, beta=0.5, omega_dag=300.0
    )
    workflow = generate_random_dag(params, seed=seed)
    t1 = time.perf_counter()
    rng = spawn_rng(seed, "scaling-costs", v)
    jobs = list(workflow.jobs)
    n = len(jobs)
    base = np.maximum(1.0, rng.uniform(0.0, 2.0 * 300.0, size=n))
    w = rng.uniform(
        base[:, None] * 0.75, base[:, None] * 1.25, size=(n, SCALING_POOL)
    )
    rids = [f"r{i + 1}" for i in range(SCALING_POOL)]
    table = {job: dict(zip(rids, row)) for job, row in zip(jobs, w.tolist())}
    edges = [(s, d) for s, d, _ in workflow.edges()]
    volumes = rng.uniform(0.0, 2.0 * 300.0, size=len(edges))
    for (s, d), volume in zip(edges, volumes.tolist()):
        workflow.set_data(s, d, volume)
    costs = TabularCostModel(workflow, table)
    t2 = time.perf_counter()
    stats = {
        "edges": len(edges),
        "dag_seconds": t1 - t0,
        "pricing_seconds": t2 - t1,
    }
    return workflow, costs, rids, stats


def measure_scaling_series(sizes=SCALING_SIZES) -> Dict[str, object]:
    """Fast-kernel-only series: warm static HEFT + adaptive latency vs V.

    The seed kernel is excluded here (it is quadratic and already pinned
    bit-identical at the smaller sizes above); the series tracks how the
    fast kernel itself scales and fits ``time ≈ c·V^k`` through the warm
    static measurements.
    """
    rows: List[Dict[str, float]] = []
    for v in sizes:
        workflow, costs, rids, stats = scaling_case(v)
        t0 = time.perf_counter()
        static = heft_schedule(workflow, costs, rids)
        cold = time.perf_counter() - t0
        warm = _best_of(
            lambda: heft_schedule(workflow, costs, rids),
            repeats=1 if v > 20_000 else 3,
        )
        def run_adaptive():
            model = ResourceChangeModel(
                initial_size=10, interval=120.0, fraction=0.15,
                max_events=SCALING_EVENTS,
            )
            return facade_run(
                workflow, model.build_pool(), mode="adaptive",
                costs=costs, strategy=AHEFTScheduler(),
            ).raw

        # best-of: the first run pays the one-off per-pool cache builds
        # and is the noisiest; repeats measure the steady replan loop
        adaptive = run_adaptive()
        adaptive_seconds = _best_of(
            run_adaptive, repeats=1 if v > 20_000 else 2
        )
        evaluated = max(adaptive.evaluated_events, 1)
        rows.append(
            {
                "v": v,
                **stats,
                "static_cold_seconds": cold,
                "static_warm_seconds": warm,
                "static_us_per_job": warm / v * 1e6,
                "adaptive_seconds": adaptive_seconds,
                "events_evaluated": adaptive.evaluated_events,
                "reschedule_latency": adaptive_seconds / evaluated,
                "static_makespan": static.makespan(),
                "adaptive_makespan": adaptive.makespan,
            }
        )
    log_v = np.log([row["v"] for row in rows])
    log_t = np.log([row["static_warm_seconds"] for row in rows])
    exponent = float(np.polyfit(log_v, log_t, 1)[0])
    return {"rows": rows, "scaling_exponent": exponent}


def measure_event_core_overhead(
    v: int = OVERHEAD_V, events: int = AHEFT_EVENTS
) -> Dict[str, float]:
    """Heap-dispatch overhead of the shared event core on an adaptive run.

    All four execution paths replay through :class:`EventCore`; this probes
    the adaptive path (the event-densest one) with the class-level
    instrumentation split: ``dispatch_seconds`` is heap pop + bookkeeping,
    ``handler_seconds`` is the policy callbacks (rescheduling itself).  The
    *fraction* is the gated quantity — it is a ratio of wall clocks measured
    in the same run, so it stays meaningful on throttled CI runners.
    """
    case = _random_case(v, seed=11)
    workflow, costs = case.workflow, case.costs
    model = ResourceChangeModel(
        initial_size=10, interval=120.0, fraction=0.15, max_events=events
    )
    pool = model.build_pool()
    _warm_cost_draws(workflow, costs, pool.available_at(float("inf")))

    def adaptive():
        return facade_run(workflow, pool, mode="adaptive", costs=costs)

    adaptive()  # warm run: lazy caches priced outside the instrumented pass
    EventCore.instrument(True)
    try:
        result = adaptive()
        stats = dict(EventCore.stats)
    finally:
        EventCore.instrument(False)
    total = stats["dispatch_seconds"] + stats["handler_seconds"]
    fraction = stats["dispatch_seconds"] / total if total > 0 else 0.0
    return {
        "v": v,
        "pool_events": events,
        "events_processed": int(stats["events"]),
        "events_evaluated": result.raw.evaluated_events,
        "dispatch_seconds": stats["dispatch_seconds"],
        "handler_seconds": stats["handler_seconds"],
        "overhead_fraction": fraction,
        "makespan": result.makespan,
    }


def kernel_scaling_results(*, quick: bool = False) -> Dict[str, object]:
    sizes = (50, 100) if quick else HEFT_SIZES
    heft_rows = measure_static_heft(sizes)
    aheft_row = measure_adaptive_aheft(
        v=100 if quick else AHEFT_V, events=5 if quick else AHEFT_EVENTS
    )
    overhead_row = measure_event_core_overhead(
        v=300 if quick else OVERHEAD_V, events=AHEFT_EVENTS
    )
    scaling = measure_scaling_series(
        SCALING_SIZES_QUICK if quick else SCALING_SIZES
    )
    return {
        "quick": quick,
        "static_heft": heft_rows,
        "adaptive_aheft": aheft_row,
        "event_core_overhead": overhead_row,
        "scaling_series": scaling,
    }


def render(results: Dict[str, object]) -> str:
    lines = ["static HEFT (20 resources):",
             "      V     seed jobs/s     fast jobs/s   speedup"]
    for row in results["static_heft"]:
        lines.append(
            f"  {row['v']:5d}  {row['seed_jobs_per_sec']:12.0f}  "
            f"{row['fast_jobs_per_sec']:14.0f}  {row['speedup']:7.1f}x"
        )
    a = results["adaptive_aheft"]
    lines.append("")
    lines.append(
        f"adaptive AHEFT (V={a['v']}, {a['pool_events']} pool events, "
        f"{a['events_evaluated']} evaluated):"
    )
    lines.append(
        f"  reschedule latency  seed {a['seed_reschedule_latency'] * 1e3:8.1f} ms   "
        f"fast {a['fast_reschedule_latency'] * 1e3:8.1f} ms   "
        f"speedup {a['speedup']:.1f}x"
    )
    o = results["event_core_overhead"]
    lines.append("")
    lines.append(
        f"event core (V={o['v']}, {o['events_processed']} events dispatched): "
        f"overhead {o['overhead_fraction'] * 100:.2f}% of adaptive wall clock "
        f"(gate ≤ {MAX_EVENT_CORE_OVERHEAD * 100:.0f}%)"
    )
    s = results["scaling_series"]
    lines.append("")
    lines.append("sparse scaling series (fast kernel, 20 resources, |E| ≈ 10·V):")
    lines.append("       V      edges   static warm    µs/job   resched latency")
    for row in s["rows"]:
        lines.append(
            f"  {row['v']:6d}  {row['edges']:9d}  {row['static_warm_seconds']:10.3f}s  "
            f"{row['static_us_per_job']:8.1f}  "
            f"{row['reschedule_latency'] * 1e3:12.1f} ms"
        )
    lines.append(
        f"  fitted static-time exponent: V^{s['scaling_exponent']:.2f} "
        f"(gate ≤ {MAX_SCALING_EXPONENT})"
    )
    return "\n".join(lines)


def check_thresholds(results: Dict[str, object]) -> None:
    """Assert the acceptance-criteria speedups.

    Schedule bit-identity is always asserted (inside the measure functions);
    the wall-clock floors are only *enforced* on full runs — the --quick CI
    smoke run prints them instead, because a throttled shared runner can
    dip below a floor with no code defect.
    """
    largest = results["static_heft"][-1]
    aheft = results["adaptive_aheft"]
    overhead = results["event_core_overhead"]
    # the overhead gate is a same-run ratio, robust to runner throttling, so
    # it is enforced in quick mode too
    assert overhead["overhead_fraction"] <= MAX_EVENT_CORE_OVERHEAD, (
        f"event-core dispatch overhead {overhead['overhead_fraction'] * 100:.1f}% "
        f"of adaptive wall clock exceeds the "
        f"{MAX_EVENT_CORE_OVERHEAD * 100:.0f}% ceiling"
    )
    scaling = results["scaling_series"]
    if results.get("quick"):
        print(
            f"(quick mode: speedups {largest['speedup']:.1f}x HEFT / "
            f"{aheft['speedup']:.1f}x AHEFT, scaling exponent "
            f"V^{scaling['scaling_exponent']:.2f} — informational only; the "
            f"exponent is gated against the committed baseline by "
            f"`repro compare`)"
        )
        return
    assert largest["speedup"] >= MIN_HEFT_SPEEDUP_AT_1000, (
        f"static HEFT speedup {largest['speedup']:.1f}x at V={largest['v']} "
        f"below the {MIN_HEFT_SPEEDUP_AT_1000}x floor"
    )
    assert aheft["speedup"] >= MIN_AHEFT_SPEEDUP, (
        f"adaptive AHEFT speedup {aheft['speedup']:.1f}x below the "
        f"{MIN_AHEFT_SPEEDUP}x floor"
    )
    assert scaling["scaling_exponent"] <= MAX_SCALING_EXPONENT, (
        f"warm static HEFT scales as V^{scaling['scaling_exponent']:.2f} on "
        f"the sparse family, above the V^{MAX_SCALING_EXPONENT} ceiling"
    )
    for row in scaling["rows"]:
        if row["v"] != 10_000:
            continue
        speedup = REFERENCE_RESCHEDULE_LATENCY_10K / row["reschedule_latency"]
        assert speedup >= MIN_RESCHEDULE_SPEEDUP_VS_REFERENCE, (
            f"V=10k reschedule latency {row['reschedule_latency'] * 1e3:.0f} ms "
            f"is only {speedup:.1f}x faster than the pre-change kernel "
            f"({REFERENCE_RESCHEDULE_LATENCY_10K * 1e3:.0f} ms); the floor "
            f"is {MIN_RESCHEDULE_SPEEDUP_VS_REFERENCE}x"
        )


def write_tracking_json(results: Dict[str, object]) -> Optional[Path]:
    """Persist the headline numbers to the top-level BENCH_kernel.json.

    Quick-mode numbers (smaller DAGs, fewer events) are not comparable to
    the full run, so they never touch the cross-PR ledger.
    """
    if results.get("quick"):
        return None
    path = REPO_ROOT / "BENCH_kernel.json"
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def test_kernel_scaling(benchmark):
    results = run_once(benchmark, kernel_scaling_results)
    publish("kernel_scaling", render(results), data=results)
    write_tracking_json(results)
    check_thresholds(results)


def main(argv: List[str]) -> int:
    unknown = [arg for arg in argv if arg != "--quick"]
    if unknown:
        print(
            f"usage: bench_kernel_scaling.py [--quick]  (unknown: {unknown})",
            file=sys.stderr,
        )
        return 2
    quick = "--quick" in argv
    results = kernel_scaling_results(quick=quick)
    publish("kernel_scaling", render(results), data=results)
    path = write_tracking_json(results)
    check_thresholds(results)
    if path is not None:
        print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
