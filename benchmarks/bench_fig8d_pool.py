"""Fig. 8(d) — average makespan vs initial resource pool size (BLAST, WIEN2K).

Paper: the smaller the initial pool, the more AHEFT outperforms HEFT; once
the initial pool is large enough the improvement flattens out.
"""

from _common import APP_POOL_SIZES, application_series, publish, run_once

from repro.experiments.reporting import render_series


def _experiment():
    return application_series("resources", APP_POOL_SIZES, seed=53)


def test_fig8d_makespan_vs_pool_size(benchmark):
    series = run_once(benchmark, _experiment)
    publish(
        "fig8d_pool",
        render_series(series, title="Fig. 8(d): average makespan vs initial resource pool size"),
    )
    for points in series.values():
        assert all(
            p.mean_makespans["AHEFT"] <= p.mean_makespans["HEFT"] + 1e-9 for p in points
        )
        # bigger initial pools shorten the static schedule
        assert points[-1].mean_makespans["HEFT"] <= points[0].mean_makespans["HEFT"] + 1e-9
    blast = series["BLAST"]
    # the relative improvement is largest for the smallest pool
    assert blast[0].improvement() >= blast[-1].improvement() - 0.02
