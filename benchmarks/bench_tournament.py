"""Strategy tournament: every registered scheduler × scenario × uncertainty.

The paper compares three strategies; the strategy registry makes the
comparison a *tournament*.  Every cell of the matrix runs the same
workloads under one scenario of grid dynamics and one estimate-error
magnitude (``resource_bias`` — the learnable structure the adaptive
loop's Predictor exploits), for every competing strategy:

* the paper's trio — static ``heft``, adaptive ``aheft``, dynamic
  ``minmin`` — plus
* the dynamic batch baselines ``maxmin`` and ``sufferage``,
* the HEFT-family newcomers ``cpop``, ``lookahead_heft`` and
  ``heft_dup``,
* the flow-based ``mincost_flow`` (Firmament-style min-cost max-flow
  placement per ready wave).

Reported per cell: the mean achieved makespan of each strategy (achieved
— the scheduler plans on estimates, the grid executes sampled truths)
and the cell winner.  A leaderboard aggregates makespans normalised by
plain HEFT's cell mean, so "1.00" reads as "ties static HEFT".

Everything is deterministic in the seed, so the quick matrix doubles as
a CI regression gate: ``repro run tournament -- --quick`` writes
``benchmarks/results/tournament_smoke.json`` and CI compares it against
the committed ``benchmarks/baselines/tournament_smoke.json`` via
``repro compare``.  Run directly (``python benchmarks/bench_tournament.py
[--quick]``) or via pytest.
"""

from __future__ import annotations

import sys

from _common import WORKERS, publish, run_once

from repro.experiments.config import RandomExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.uncertainty import sweep_uncertainty

#: the competitors, in presentation order (all names from the registry)
STRATEGIES = (
    "heft",
    "aheft",
    "cpop",
    "lookahead_heft",
    "heft_dup",
    "minmin",
    "maxmin",
    "sufferage",
    "mincost_flow",
)

SCENARIOS = ("static", "paper", "departures")
MAGNITUDES = (0.0, 0.4)
ERROR_MODEL = "resource_bias"


def render_tournament(points) -> str:
    headers = ["scenario", "error"] + [s for s in STRATEGIES] + ["winner"]
    rows = []
    for point in points:
        means = point.mean_makespans
        winner = min(STRATEGIES, key=lambda s: (means[s], s))
        rows.append(
            [point.scenario, f"{point.magnitude:g}"]
            + [f"{means[s]:.1f}" for s in STRATEGIES]
            + [winner]
        )
    return format_table(headers, rows)


def leaderboard(points) -> dict:
    """Mean HEFT-normalised makespan and cell wins per strategy."""
    norms = {s: [] for s in STRATEGIES}
    wins = {s: 0 for s in STRATEGIES}
    for point in points:
        means = point.mean_makespans
        baseline = means["heft"]
        for s in STRATEGIES:
            norms[s].append(means[s] / baseline)
        wins[min(STRATEGIES, key=lambda s: (means[s], s))] += 1
    return {
        s: {
            "mean_vs_heft": sum(norms[s]) / len(norms[s]),
            "wins": wins[s],
        }
        for s in STRATEGIES
    }


def render_leaderboard(board) -> str:
    ordered = sorted(board, key=lambda s: board[s]["mean_vs_heft"])
    rows = [
        [s, f"{board[s]['mean_vs_heft']:.3f}", board[s]["wins"]] for s in ordered
    ]
    return format_table(["strategy", "mean makespan vs HEFT", "cell wins"], rows)


def run_matrix(*, quick: bool = False):
    # a deliberately tight initial pool: the join-only "paper" scenario then
    # actually differentiates from "static" (late arrivals relieve real
    # contention instead of idling)
    base = RandomExperimentConfig(
        v=24 if quick else 36,
        resources=4 if quick else 6,
        seed=0,
    )
    points = sweep_uncertainty(
        MAGNITUDES,
        error_model=ERROR_MODEL,
        scenarios=SCENARIOS,
        strategies=STRATEGIES,
        base_config=base,
        instances=1 if quick else 2,
        replications=2 if quick else 3,
        seed=0,
        workers=WORKERS,
    )
    board = leaderboard(points)
    text = (
        "Strategy tournament (mean achieved makespan per cell)\n"
        + render_tournament(points)
        + "\n\nLeaderboard (normalised by static HEFT)\n"
        + render_leaderboard(board)
    )
    publish(
        "tournament_smoke" if quick else "tournament",
        text,
        {
            "strategies": list(STRATEGIES),
            "scenarios": list(SCENARIOS),
            "error_model": ERROR_MODEL,
            "magnitudes": [float(m) for m in MAGNITUDES],
            "points": [point.as_dict() for point in points],
            "leaderboard": board,
        },
    )
    return points, board


def test_tournament_matrix(benchmark):
    points, board = run_once(benchmark, lambda: run_matrix(quick=True))
    assert len(points) == len(SCENARIOS) * len(MAGNITUDES)
    # every competitor finishes every cell with a positive makespan
    for point in points:
        for strategy in STRATEGIES:
            assert point.stats[strategy].mean > 0
    # the HEFT family stays a family: cpop and lookahead_heft land within
    # a loose band of plain HEFT on aggregate (sanity, not performance)
    assert 0.6 <= board["cpop"]["mean_vs_heft"] <= 1.8
    assert 0.7 <= board["lookahead_heft"]["mean_vs_heft"] <= 1.4
    # duplication executes as planned: at zero noise heft_dup matches or
    # beats plain HEFT (its duplicates are adopted only on strict EFT
    # improvement and the executor runs them as real work); on aggregate it
    # stays within a loose band (estimate error erodes dup-optimistic plans)
    zero_noise = [p for p in points if p.magnitude == 0]
    assert zero_noise
    for point in zero_noise:
        assert point.mean_makespans["heft_dup"] <= point.mean_makespans["heft"] + 1e-6
    assert board["heft_dup"]["mean_vs_heft"] <= 1.25
    # adaptivity pays under dynamics: with departures and biased estimates,
    # AHEFT beats static HEFT on the cell means
    hostile = [
        p for p in points if p.scenario == "departures" and p.magnitude > 0
    ]
    assert hostile
    for point in hostile:
        assert point.mean_makespans["aheft"] <= point.mean_makespans["heft"]


if __name__ == "__main__":
    run_matrix(quick="--quick" in sys.argv)
