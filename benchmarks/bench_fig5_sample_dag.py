"""Fig. 4/5 — the worked example: HEFT makespan 80, AHEFT with r4 at t=15.

Paper: HEFT = 80, AHEFT = 76.  Our faithful implementation of the stated
equations reproduces HEFT = 80 exactly; the greedy min-EFT rule keeps the
original plan at this tiny scale (see EXPERIMENTS.md for the discussion),
so the adopted makespan stays at 80 while remaining provably no worse than
the static plan.
"""

from _common import publish, run_once

from repro.facade import run as facade_run
from repro.experiments.reporting import format_table
from repro.generators.sample import (
    sample_dag_cost_model,
    sample_dag_pool,
    sample_dag_workflow,
)


def _experiment():
    workflow = sample_dag_workflow()
    costs = sample_dag_cost_model(workflow)
    pool = sample_dag_pool()
    heft = facade_run(workflow, pool, mode="static", costs=costs)
    aheft = facade_run(workflow, pool, mode="adaptive", costs=costs)
    return heft, aheft


def test_fig5_sample_dag(benchmark):
    heft, aheft = run_once(benchmark, _experiment)
    rows = [
        ["HEFT (r1-r3)", 80.0, heft.makespan],
        ["AHEFT (r4 joins at 15)", 76.0, aheft.makespan],
    ]
    table = format_table(["schedule", "paper", "measured"], rows)
    table += (
        f"\nevents evaluated: {aheft.raw.evaluated_events}, "
        f"reschedules adopted: {aheft.rescheduling_count}"
    )
    publish("fig5_sample_dag", table)
    assert heft.makespan == 80.0
    assert aheft.makespan <= heft.makespan
