"""Fig. 8(f) — average makespan vs resource-change percentage δ (BLAST, WIEN2K).

Paper: the improvement rate is not very sensitive to δ; AHEFT stays below
HEFT across the range.
"""

from _common import FRACTIONS, application_series, publish, run_once

from repro.experiments.reporting import render_series


def _experiment():
    return application_series("fraction", FRACTIONS, seed=55)


def test_fig8f_makespan_vs_change_percentage(benchmark):
    series = run_once(benchmark, _experiment)
    publish(
        "fig8f_percentage",
        render_series(series, title="Fig. 8(f): average makespan vs resource change percentage"),
    )
    for points in series.values():
        assert all(
            p.mean_makespans["AHEFT"] <= p.mean_makespans["HEFT"] + 1e-9 for p in points
        )
