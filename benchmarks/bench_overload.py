"""Overload management: admission control under a flash crowd.

The multi-tenant experiments show what happens when demand exceeds the
shared grid: tail stretch explodes.  This benchmark runs the same
flash-crowd case twice — once open-door, once behind the admission
controller — and reports the overload headline metrics side by side:

* p99 stretch (the tail a tenant actually experiences),
* the exceedance rate over the configured stretch limit,
* rejected / deferred arrivals (the price of the bounded tail),
* deadline and SLO violations against the tenants' service targets,
* the final per-tenant credit scores.

The claim pinned by the ledger: with admission on, the p99 stretch stays
near the configured limit and some arrivals are rejected or deferred;
open-door, every arrival is accepted and the tail blows past the limit.
Everything derives from the seed, so CI regenerates the quick ledger
(``repro run overload -- --quick``) and gates it against
``benchmarks/baselines/overload_smoke.json`` via ``repro compare``.
Run directly (``python benchmarks/bench_overload.py [--quick]``) or via
pytest.
"""

from __future__ import annotations

import sys
from dataclasses import replace

from _common import publish, run_once

from repro.experiments.metrics import exceedance_rate
from repro.experiments.multi_tenant import (
    MultiTenantConfig,
    run_multi_tenant_case,
)

#: the admission knobs of the gated cell (and the exceedance threshold)
STRETCH_LIMIT = 3.0


def _base_config(*, quick: bool) -> MultiTenantConfig:
    return MultiTenantConfig(
        tenants=3,
        arrival_rate=0.02,
        resources=8,
        v=12 if quick else 16,
        parallelism=6 if quick else 8,
        max_arrivals=4 if quick else 6,
        scenario="flash_crowd",
        seed=0,
        slo_stretch=STRETCH_LIMIT,
        deadline_factor=4.0,
    )


def run_overload(*, quick: bool = False):
    base = _base_config(quick=quick)
    cells = {
        "open_door": run_multi_tenant_case(base),
        "admission": run_multi_tenant_case(
            replace(
                base,
                admission=True,
                stretch_limit=STRETCH_LIMIT,
                saturation_threshold=0.8,
                max_deferrals=3,
            )
        ),
    }
    header = (
        f"{'cell':<10} {'wfs':>4} {'p99 str':>8} {'exceed':>7} "
        f"{'rej':>4} {'defer':>6} {'ddl':>4} {'slo':>4} {'min credit':>10}"
    )
    lines = [header, "-" * len(header)]
    data = {}
    for name, cell in cells.items():
        stretches = [o.stretch for o in cell.result.outcomes]
        exceed = exceedance_rate(stretches, STRETCH_LIMIT)
        credits = cell.result.credits
        lines.append(
            f"{name:<10} {cell.workflows:>4} {cell.p99_stretch:>8.3f} "
            f"{exceed:>7.2f} {cell.rejected:>4} {cell.deferrals:>6} "
            f"{cell.deadline_violations:>4} {cell.slo_violations:>4} "
            f"{min(credits.values()) if credits else 1.0:>10.3f}"
        )
        data[name] = dict(cell.as_dict(), exceedance_rate=exceed)
    publish(
        "overload_smoke",
        "\n".join(lines),
        {"stretch_limit": STRETCH_LIMIT, "cells": data},
    )
    return cells


def test_admission_bounds_the_tail(benchmark):
    cells = run_once(benchmark, lambda: run_overload(quick=True))
    off, on = cells["open_door"], cells["admission"]
    # open-door, the flash crowd blows the tail past the stretch limit
    assert off.p99_stretch > STRETCH_LIMIT
    assert off.rejected == 0 and off.deferrals == 0
    # admission pays with rejections/deferrals and keeps the tail bounded
    assert on.rejected + on.deferrals > 0
    assert on.p99_stretch < off.p99_stretch
    assert on.p99_stretch <= STRETCH_LIMIT * 1.15
    # every admitted workflow still ran to completion, none twice
    assert on.workflows + on.rejected == off.workflows
    # behaviour scoring ran: credits are well-formed for every tenant
    for cell in cells.values():
        assert all(0.0 < c <= 1.0 for c in cell.result.credits.values())


if __name__ == "__main__":
    run_overload(quick="--quick" in sys.argv)
