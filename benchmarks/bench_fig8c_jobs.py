"""Fig. 8(c) — average makespan vs total number of jobs (BLAST, WIEN2K).

Paper: makespan grows with the number of jobs; the gap between HEFT and
AHEFT widens as the DAG gets more complex.
"""

from _common import APP_PARALLELISM, application_series, publish, run_once

from repro.experiments.reporting import render_series


def _experiment():
    return application_series("parallelism", APP_PARALLELISM, seed=52)


def test_fig8c_makespan_vs_jobs(benchmark):
    series = run_once(benchmark, _experiment)
    publish(
        "fig8c_jobs",
        render_series(series, title="Fig. 8(c): average makespan vs number of jobs (parallelism)"),
    )
    for points in series.values():
        assert all(
            p.mean_makespans["AHEFT"] <= p.mean_makespans["HEFT"] + 1e-9 for p in points
        )
        assert points[-1].mean_makespans["HEFT"] > points[0].mean_makespans["HEFT"]
