"""Fig. 8(a) — average makespan vs CCR for HEFT/AHEFT on BLAST and WIEN2K.

Paper: makespan grows with CCR for every strategy; the AHEFT curves sit
below the corresponding HEFT curves, with the widest gap for BLAST.
"""

from _common import CCR_VALUES, application_series, publish, run_once

from repro.experiments.reporting import render_series


def _experiment():
    return application_series("ccr", CCR_VALUES, seed=50)


def test_fig8a_makespan_vs_ccr(benchmark):
    series = run_once(benchmark, _experiment)
    publish("fig8a_ccr", render_series(series, title="Fig. 8(a): average makespan vs CCR"))
    for points in series.values():
        # AHEFT curve never above HEFT curve
        assert all(
            p.mean_makespans["AHEFT"] <= p.mean_makespans["HEFT"] + 1e-9 for p in points
        )
        # makespan grows with data intensity
        assert points[-1].mean_makespans["HEFT"] > points[0].mean_makespans["HEFT"]
