"""Scenario matrix: HEFT vs AHEFT vs Min-Min under adversarial dynamics.

The paper's evaluation (§4.1) only exercises resource *joins*; this
benchmark re-runs the strategy comparison under every registered scenario
of the scenario engine — departures (busy resources included),
performance degradation/recovery, pool-wide load spikes, churn and flash
crowds — reporting mean makespan, adopted-reschedule count and wasted
work per strategy.

The same matrix is runnable from the CLI (``repro sweep --scenario …``);
CI runs the quick four-scenario subset and gates the resulting ledger
against ``benchmarks/baselines/scenario_smoke.json`` via ``repro
compare``.  Run directly (``python benchmarks/bench_scenario_matrix.py
[--quick]``) or via pytest.
"""

from __future__ import annotations

import sys

from _common import WORKERS, publish, run_once

from repro.experiments.config import RandomExperimentConfig
from repro.experiments.reporting import render_scenario_matrix
from repro.experiments.sweep import sweep_scenarios
from repro.scenarios import available_scenarios

STRATEGIES = ("HEFT", "AHEFT", "MinMin")


def run_matrix(*, quick: bool = False):
    base = RandomExperimentConfig(
        v=30 if quick else 60, resources=8 if quick else 10
    )
    points = sweep_scenarios(
        list(available_scenarios()),
        base_config=base,
        instances=1 if quick else 2,
        strategies=STRATEGIES,
        seed=0,
        workers=WORKERS,
    )
    text = render_scenario_matrix(
        points,
        strategies=STRATEGIES,
        title="Strategy comparison under adversarial grid dynamics",
    )
    publish(
        "scenario_matrix",
        text,
        {"scenarios": [point.as_dict() for point in points]},
    )
    return points


def test_scenario_matrix(benchmark):
    points = run_once(benchmark, run_matrix)
    by_name = {point.scenario: point for point in points}
    # AHEFT never loses to static HEFT under the paper's own dynamics …
    assert by_name["paper"].improvement() >= -1e-9
    # … and adaptive rescheduling recovers work under departures
    assert by_name["departures"].mean_reschedules["AHEFT"] > 0


if __name__ == "__main__":
    run_matrix(quick="--quick" in sys.argv)
