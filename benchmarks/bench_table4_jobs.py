"""Table 4 — AHEFT improvement over HEFT vs total number of jobs (random DAGs).

Paper: 2.9%, 3.9%, 4.3%, 4.2%, 4.1% for v = 20, 40, 60, 80, 100 — the rate
jumps initially and then stabilises.
"""

from _common import INSTANCES, RANDOM_V, WORKERS, base_random_config, publish, run_once

from repro.experiments.reporting import render_improvement_table
from repro.experiments.sweep import sweep_random_parameter

PAPER_ROW = {20: 2.9, 40: 3.9, 60: 4.3, 80: 4.2, 100: 4.1}


def _experiment():
    return sweep_random_parameter(
        "v",
        list(RANDOM_V),
        base_config=base_random_config(),
        instances=max(INSTANCES, 2),
        strategies=("HEFT", "AHEFT"),
        seed=31,
        workers=WORKERS,
    )


def test_table4_improvement_vs_jobs(benchmark):
    points = run_once(benchmark, _experiment)
    table = render_improvement_table(points, title="Table 4: improvement rate vs number of jobs")
    paper_line = "paper:       " + "  ".join(
        f"{PAPER_ROW[point.value]:.1f}%" for point in points
    )
    publish("table4_jobs", table + "\n" + paper_line)
    improvements = [point.improvement() for point in points]
    assert all(rate >= -1e-9 for rate in improvements)
