"""Ablation — the "accept only if better" rule of the adaptive loop (Fig. 2 line 7).

Not a paper table: this ablation quantifies the design choice DESIGN.md
calls out.  Dropping the guard (always adopting the rescheduled plan) can
only be equal or worse, because the HEFT heuristic occasionally produces a
longer schedule when the resource set changes.
"""

from _common import SCALE, WORKERS, base_application_config, publish, run_once

from repro.experiments.metrics import average
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentCase, run_case_batch

NUM_CASES = 6 if SCALE == "paper" else 3


def _experiment():
    experiments = [
        ExperimentCase(config.build_case(), config.build_resource_model())
        for config in (
            base_application_config("blast", instance=instance, seed=60 + instance)
            for instance in range(NUM_CASES)
        )
    ]
    return run_case_batch(
        experiments, strategies=("HEFT", "AHEFT", "AHEFT-always"), workers=WORKERS
    )


def test_ablation_accept_only_if_better(benchmark):
    results = run_once(benchmark, _experiment)
    means = {
        strategy: average(result.makespans[strategy] for result in results)
        for strategy in ("HEFT", "AHEFT", "AHEFT-always")
    }
    rows = [[strategy, means[strategy]] for strategy in means]
    table = format_table(["variant", "avg makespan"], rows)
    publish("ablation_accept_rule", table)
    assert means["AHEFT"] <= means["HEFT"] + 1e-9
    assert means["AHEFT"] <= means["AHEFT-always"] + 1e-9
