"""Fig. 8(e) — average makespan vs resource-change interval Δ (BLAST, WIEN2K).

Paper: the more dynamic the grid (smaller Δ, i.e. more frequent additions),
the more efficient AHEFT is; HEFT is insensitive to Δ because it never uses
the added resources.
"""

from _common import INTERVALS, application_series, publish, run_once

from repro.experiments.reporting import render_series


def _experiment():
    return application_series("interval", INTERVALS, seed=54)


def test_fig8e_makespan_vs_interval(benchmark):
    series = run_once(benchmark, _experiment)
    publish(
        "fig8e_interval",
        render_series(series, title="Fig. 8(e): average makespan vs resource change interval"),
    )
    for points in series.values():
        assert all(
            p.mean_makespans["AHEFT"] <= p.mean_makespans["HEFT"] + 1e-9 for p in points
        )
    blast = series["BLAST"]
    # more frequent additions (small Δ) help at least as much as rare ones
    assert blast[0].improvement() >= blast[-1].improvement() - 0.02
