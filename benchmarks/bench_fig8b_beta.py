"""Fig. 8(b) — average makespan vs resource heterogeneity β (BLAST, WIEN2K).

Paper: the improvement rate is not very sensitive to β; the AHEFT curves
stay below the HEFT curves across the whole range.
"""

from _common import BETA_VALUES, application_series, publish, run_once

from repro.experiments.reporting import render_series


def _experiment():
    return application_series("beta", BETA_VALUES, seed=51)


def test_fig8b_makespan_vs_beta(benchmark):
    series = run_once(benchmark, _experiment)
    publish("fig8b_beta", render_series(series, title="Fig. 8(b): average makespan vs beta"))
    for points in series.values():
        assert all(
            p.mean_makespans["AHEFT"] <= p.mean_makespans["HEFT"] + 1e-9 for p in points
        )
