"""Table 6 — average makespan and improvement rate for BLAST and WIEN2K.

Paper: BLAST HEFT 4939.3 vs AHEFT 3933.1 (20.4%); WIEN2K HEFT 3451.6 vs
AHEFT 3233.8 (6.3%).  The benchmark averages a deterministic sample of the
Table 5 grid per application and reports the same three columns.
"""

from dataclasses import replace

from _common import SCALE, publish, run_once

from repro.experiments.config import sample_application_grid
from repro.experiments.metrics import average, improvement_rate
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentCase, run_case

NUM_POINTS = 12 if SCALE == "paper" else 4
MAX_PARALLELISM = 1000 if SCALE == "paper" else 120

PAPER = {"blast": (4939.3, 3933.1, 20.4), "wien2k": (3451.6, 3233.8, 6.3)}


def _run_application(application: str):
    configs = sample_application_grid(application, NUM_POINTS, seed=40)
    results = []
    for config in configs:
        if config.parallelism > MAX_PARALLELISM:
            config = replace(config, parallelism=MAX_PARALLELISM)
        experiment = ExperimentCase(config.build_case(), config.build_resource_model())
        results.append(run_case(experiment, strategies=("HEFT", "AHEFT")))
    heft = average(result.makespans["HEFT"] for result in results)
    aheft = average(result.makespans["AHEFT"] for result in results)
    return heft, aheft


def _experiment():
    return {app: _run_application(app) for app in ("blast", "wien2k")}


def test_table6_applications(benchmark):
    measured = run_once(benchmark, _experiment)
    rows = []
    for app, (heft, aheft) in measured.items():
        rate = improvement_rate(heft, aheft) * 100.0
        paper_heft, paper_aheft, paper_rate = PAPER[app]
        rows.append([app.upper(), paper_heft, paper_aheft, f"{paper_rate:.1f}%",
                     heft, aheft, f"{rate:.1f}%"])
    table = format_table(
        ["application", "paper HEFT", "paper AHEFT", "paper impr.",
         "measured HEFT", "measured AHEFT", "measured impr."],
        rows,
    )
    publish("table6_applications", table)
    blast_rate = improvement_rate(*measured["blast"])
    wien2k_rate = improvement_rate(*measured["wien2k"])
    # shape: both applications benefit and AHEFT never loses
    assert blast_rate >= -1e-9 and wien2k_rate >= -1e-9
