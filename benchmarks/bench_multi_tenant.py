"""Multi-tenant shared grid: concurrent workflow streams under dynamics.

The paper schedules one workflow at a time on a dedicated (if changing)
grid.  This benchmark runs the multi-workflow subsystem instead: several
tenants submit Poisson streams of heterogeneous workflows (random DAGs
plus BLAST / WIEN2K / Montage), every tenant books slots on the *same*
resource timelines, and per-tenant AHEFT replans against the shared
residual capacity whenever the grid changes.  Reported per cell of the
(scenario × policy) matrix: mean and 95th-percentile flow time, mean
stretch, throughput, Jain fairness across tenants, and the wasted work
departures inflicted.

The same matrix is runnable from the CLI (``repro multi --tenants …``);
CI generates the quick ledger with ``repro multi --quick`` and gates it
against ``benchmarks/baselines/multi_tenant_smoke.json`` via ``repro
compare``.  Run directly (``python benchmarks/bench_multi_tenant.py
[--quick]``) or via pytest.
"""

from __future__ import annotations

import sys

from _common import publish, run_once

from repro.experiments.multi_tenant import MultiTenantConfig
from repro.experiments.reporting import render_multi_tenant_matrix
from repro.experiments.sweep import sweep_multi_workflow

SCENARIOS = ("static", "departures", "churn")
POLICIES = ("fifo", "fair_share", "rank_priority")


def run_matrix(*, quick: bool = False):
    base = MultiTenantConfig(
        resources=8 if quick else 10,
        v=16 if quick else 24,
        parallelism=8 if quick else 12,
        max_arrivals=3 if quick else 5,
        seed=0,
    )
    points = sweep_multi_workflow(
        arrival_rates=[0.004],
        tenant_counts=[3 if quick else 4],
        scenarios=list(SCENARIOS),
        policies=list(POLICIES),
        base_config=base,
    )
    text = render_multi_tenant_matrix(
        points, title="Concurrent tenants on one shared grid"
    )
    publish(
        "multi_tenant",
        text,
        {"points": [point.as_dict() for point in points]},
    )
    return points


def test_multi_tenant_matrix(benchmark):
    points = run_once(benchmark, lambda: run_matrix(quick=True))
    by_cell = {(p.scenario, p.policy): p for p in points}
    # contention exists: under FIFO on the static grid the average workflow
    # is slowed down relative to running alone
    assert by_cell[("static", "fifo")].mean_stretch >= 1.0 - 1e-9
    # departures inflict kills whose partial executions are wasted work
    assert by_cell[("departures", "fifo")].wasted_work > 0
    # fairness is a well-formed Jain index on every cell
    for point in points:
        assert 0.0 < point.fairness <= 1.0 + 1e-9
        assert point.workflows > 0


if __name__ == "__main__":
    run_matrix(quick="--quick" in sys.argv)
