"""Table 7 — improvement rate vs parallelism for BLAST and WIEN2K.

Paper: BLAST 15.9% → 23.6% and WIEN2K 2.2% → 9.4% as the parallelism grows
from 200 to 1000 — the improvement increases with DAG complexity for both
applications and BLAST gains more than WIEN2K throughout.
"""

from _common import APP_PARALLELISM, application_series, publish, run_once

from repro.experiments.reporting import render_improvement_table

PAPER = {
    "BLAST": (15.9, 18.3, 19.9, 21.9, 23.6),
    "WIEN2K": (2.2, 4.3, 6.0, 7.8, 9.4),
}


def _experiment():
    return application_series("parallelism", APP_PARALLELISM, seed=41)


def test_table7_improvement_vs_parallelism(benchmark):
    series = run_once(benchmark, _experiment)
    blocks = []
    for label, points in series.items():
        block = render_improvement_table(
            points, title=f"Table 7 ({label}): improvement rate vs parallelism"
        )
        block += "\npaper:       " + "  ".join(f"{v:.1f}%" for v in PAPER[label])
        blocks.append(block)
    publish("table7_parallelism", "\n\n".join(blocks))
    blast = [point.improvement() for point in series["BLAST"]]
    wien2k = [point.improvement() for point in series["WIEN2K"]]
    # shape: improvement grows with parallelism (first vs last point) and is
    # non-negative everywhere
    assert all(rate >= -1e-9 for rate in blast + wien2k)
    assert blast[-1] >= blast[0] - 0.02
    assert wien2k[-1] >= wien2k[0] - 0.02
