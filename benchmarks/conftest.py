"""Pytest configuration for the benchmark harness."""

import sys
from pathlib import Path

# make the local helper module importable regardless of invocation directory
sys.path.insert(0, str(Path(__file__).parent))
